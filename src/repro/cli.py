"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``build``    construct a graph family member and print its vitals
``verify``   run a (k, G)-tolerance check (exhaustive or sampled)
``report``   regenerate paper figures/tables (delegates to the registry)
``route``         show a logical route and its lift under a fault set
``demo``          thirty-second tour: construct, fail, reconfigure, verify
``bench-engines`` race the object vs. batch simulation engines on one
                  workload and check they agree packet-for-packet
``run``           execute any experiment spec or grid JSON — closed-loop
                  workloads, open-loop streams, saturation ladders,
                  whole saturation surfaces, and Monte-Carlo replicated
                  fault universes (``fault_model`` + ``replicas``) —
                  through one front door (see :mod:`repro.experiments`
                  and docs/experiments.md)
``sweep``         deprecated: closed-loop grid sweep by flags (use
                  ``run`` with a grid JSON)
``saturate``      deprecated: open-loop rate ladder by flags (use
                  ``run`` with a stream spec JSON and ``--rates``)
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import (
    bus_ft_debruijn,
    debruijn,
    exhaustive_tolerance_check,
    ft_debruijn,
    ft_degree_bound,
    natural_ft_shuffle_exchange,
    psi_map,
    random_tolerance_check,
    samatham_pradhan,
    shuffle_exchange,
)
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _cmd_build(args: argparse.Namespace) -> int:
    kind = args.kind
    if kind == "debruijn":
        g = debruijn(args.m, args.h)
        extra = ""
    elif kind == "ft":
        g = ft_debruijn(args.m, args.h, args.k)
        extra = f", degree bound {ft_degree_bound(args.m, args.k)}"
    elif kind == "se":
        g = shuffle_exchange(args.h)
        extra = ""
    elif kind == "natural-ft-se":
        g = natural_ft_shuffle_exchange(args.h, args.k)
        extra = f", degree bound {6 * args.k + 6}"
    elif kind == "sp":
        g = samatham_pradhan(args.m, args.h, args.k)
        extra = " (Samatham-Pradhan baseline)"
    elif kind == "bus":
        bg = bus_ft_debruijn(args.h, args.k)
        print(
            f"bus B^{args.k}_{{2,{args.h}}}: {bg.node_count} nodes, "
            f"{bg.bus_count} buses, max bus-degree {bg.max_bus_degree()} "
            f"(bound 2k+3 = {2 * args.k + 3})"
        )
        return 0
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown kind {kind}")
    print(
        f"{kind}(m={args.m}, h={args.h}, k={args.k}): {g.node_count} nodes, "
        f"{g.edge_count} edges, max degree {g.max_degree()}{extra}"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    ft = ft_debruijn(args.m, args.h, args.k)
    if args.target == "se":
        if args.m != 2:
            print("shuffle-exchange targets require m=2", file=sys.stderr)
            return 2
        target = shuffle_exchange(args.h)
        lm = psi_map(args.h)
    else:
        target = debruijn(args.m, args.h)
        lm = None
    if args.samples:
        rep = random_tolerance_check(
            ft, target, args.k, samples=args.samples,
            rng=np.random.default_rng(args.seed), logical_map=lm,
        )
    else:
        rep = exhaustive_tolerance_check(ft, target, args.k, logical_map=lm)
    print(rep)
    return 0 if rep.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reports import REPORTS

    if args.list:
        from repro.analysis.reporting import all_experiment_ids

        print("registered reports (bundle-capable, see docs/reports.md):")
        for name in REPORTS.names():
            print(f"  {name}")
        print("legacy analysis ids (paper figures/tables):")
        for exp_id in all_experiment_ids():
            print(f"  {exp_id}")
        return 0

    ids = list(args.ids or [])
    registered = [i for i in ids if i in REPORTS]
    if not registered:
        # legacy figure/table path — unchanged, including "no ids = all"
        from repro.analysis.reporting import main as report_main

        return report_main(ids or None)
    if len(registered) != len(ids):
        legacy = sorted(set(ids) - set(registered))
        print(f"error: cannot mix registered reports {registered} with "
              f"legacy analysis ids {legacy} in one invocation",
              file=sys.stderr)
        return 2

    import os

    from repro.analysis.reporting import format_table
    from repro.reports import build_report, write_report_bundle
    from repro.simulator.pool import WorkerPool

    _install_signal_handlers()
    with WorkerPool(workers=args.workers,
                    chunk_size=args.chunk_size) as report_pool:
        for name in registered:
            run = build_report(name, quick=args.quick, pool=report_pool)
            print(f"{run.plan.title}")
            print(f"{len(run.plan.cells)} cells on {run.workers} worker(s), "
                  f"{run.seconds:.3f} s")
            if run.summary:
                print(f"\n{run.summary}")
            for table in run.tables:
                print(f"\n{table.name}: {table.caption}")
                display = [
                    {c: row[c] for c in table.columns} for row in table.rows
                ]
                print(format_table(display))
            if args.bundle:
                out = (args.bundle if len(registered) == 1
                       else os.path.join(args.bundle, name))
                manifest = write_report_bundle(run, out)
                print(f"\nwrote bundle: {out} "
                      f"({len(manifest['artifacts'])} artifacts "
                      f"+ manifest.json)")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.routing import ReconfiguredRouter

    router = ReconfiguredRouter(args.m, args.h, args.k)
    for f in args.fault:
        router.fail_node(f)
    logical = router.logical_route(args.src, args.dst)
    physical = router.physical_route(args.src, args.dst)
    print(f"logical  ({len(logical) - 1} hops): {logical}")
    print(f"physical ({len(physical) - 1} hops): {physical}")
    print(f"faults: {list(router.reconfigurator.faults)} — zero dilation")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core import embed_after_faults
    from repro.viz import relabeled_listing

    h, k, fault = 4, 1, 4
    ft = ft_debruijn(2, h, k)
    target = debruijn(2, h)
    print(f"B^{k}_{{2,{h}}}: {ft.node_count} nodes (minimum possible: N+k), "
          f"degree {ft.max_degree()}")
    print(f"\n*** node {fault} fails ***\n")
    phi = embed_after_faults(ft, target, faults=[fault])
    print(relabeled_listing(ft.node_count, phi, [fault], 2, h))
    rep = exhaustive_tolerance_check(ft, target, k)
    print(f"\nand this works for EVERY fault: {rep}")
    return 0


def _cmd_bench_engines(args: argparse.Namespace) -> int:
    import time

    from repro.simulator import (
        FaultScenario,
        ReconfigurationController,
        make_pattern,
    )

    n = args.m ** args.h
    pairs = make_pattern(
        n, args.pattern, args.packets, np.random.default_rng(args.seed)
    )
    if args.batches > 1:
        batches = np.array_split(pairs, args.batches)
    else:
        batches = [pairs]
    faults = []
    for spec in args.fault:
        try:
            cycle_s, node_s = spec.split(":")
            faults.append((int(cycle_s), int(node_s)))
        except ValueError:
            print(f"error: --fault expects CYCLE:NODE, got {spec!r}", file=sys.stderr)
            return 2

    results = {}
    for engine in ("object", "batch"):
        ctrl = ReconfigurationController(
            args.m, args.h, args.k, engine=engine, link_capacity=args.capacity
        )
        if faults:
            ctrl.schedule(FaultScenario(list(faults)))
        t0 = time.perf_counter()
        stats = ctrl.run_workload(
            [b.copy() for b in batches], cycles_per_batch=args.cycles_per_batch
        )
        results[engine] = (time.perf_counter() - t0, stats)

    t_obj, s_obj = results["object"]
    t_bat, s_bat = results["batch"]
    identical = s_obj == s_bat
    print(
        f"workload: {args.pattern}, {pairs.shape[0]} packets on "
        f"B^{args.k}_{{{args.m},{args.h}}}"
        + (f", faults {faults}" if faults else "")
    )
    print(f"object engine: {t_obj:8.3f} s   {s_obj}")
    print(f"batch  engine: {t_bat:8.3f} s   {s_bat}")
    print(f"speedup: {t_obj / t_bat:.1f}x   identical stats: {identical}")
    return 0 if identical else 1


def _parse_mhk(spec: str) -> tuple[int, int, int]:
    try:
        m, h, k = (int(x) for x in spec.split(","))
        return m, h, k
    except ValueError:
        raise ReproError(f"--mhk expects M,H,K (e.g. 2,8,1), got {spec!r}") from None


def _parse_fault_set(spec: str) -> tuple[tuple[int, int], ...]:
    spec = spec.strip()
    if not spec or spec == "none":
        return ()
    out = []
    for part in spec.split(","):
        try:
            cycle_s, node_s = part.split(":")
            out.append((int(cycle_s), int(node_s)))
        except ValueError:
            raise ReproError(
                f"--fault-set expects CYCLE:NODE[,CYCLE:NODE...], got {spec!r}"
            ) from None
    return tuple(out)


def _load_run_input(path: str):
    """Parse a ``repro run`` JSON file into a spec or grid.

    Accepted shapes: a bare :class:`~repro.experiments.ExperimentSpec`
    field object, ``{"experiment": {...}}``, or ``{"grid": {...}}`` for
    an :class:`~repro.experiments.ExperimentGrid`.
    """
    import json

    from repro.experiments import parse_run_payload

    with open(path) as fh:
        payload = json.load(fh)
    return parse_run_payload(payload, origin=path)


def _install_signal_handlers() -> None:
    """Make SIGTERM behave like Ctrl-C: the KeyboardInterrupt unwinds
    through the pool's context manager, which force-closes — busy
    workers are terminated and owned /dev/shm segments unlinked — so a
    ``kill`` leaves neither orphan processes nor leaked segments."""
    import signal

    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # pragma: no cover - not the main thread
        pass


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.reporting import format_table
    from repro.experiments import run_grid
    from repro.simulator.pool import WorkerPool
    from repro.simulator.shard_driver import ShardStats
    from repro.simulator.streaming import find_saturation

    _install_signal_handlers()
    target, kind = _load_run_input(args.spec)
    rates = [float(x) for x in args.rates.split(",")] if args.rates else None
    if rates is not None and (kind != "experiment" or target.loop != "stream"):
        print("error: --rates applies to a single stream experiment "
              "(use a grid with a `rates` axis for surfaces)", file=sys.stderr)
        return 2

    if rates is not None:
        # open-loop saturation ladder: sweep the rates in parallel, then
        # bracket + bisect the saturation point; one warm pool serves
        # the whole ladder
        with WorkerPool(workers=args.workers,
                        chunk_size=args.chunk_size) as run_pool:
            res = find_saturation(
                target, rates, bisect=args.bisect, threshold=args.threshold,
                pool=run_pool,
            )
        print(f"{target.label} — offered-load ladder")
        print(format_table(res.curve()))
        if res.bracketed:
            print(f"saturation ~ {res.saturation_rate:.3f} pkt/cycle "
                  f"(stable {res.stable_rate:.3f}, "
                  f"unstable {res.unstable_rate:.3f}, "
                  f"threshold {res.threshold})")
        else:
            bound = "lower" if res.stable_rate else "upper"
            print(f"saturation not bracketed by the rate ladder; "
                  f"{bound} bound ~ {res.saturation_rate:.3f} pkt/cycle")
        if args.out:
            from repro.reports import write_run_bundle

            write_run_bundle(
                res.points, args.out,
                source={"kind": "saturation", "experiment": target.to_dict(),
                        "rates": rates},
            )
            print(f"wrote per-cell artifacts: {args.out}")
        if args.json:
            payload = {
                "experiment": target.to_dict(),
                "rates": rates,
                "workers": res.workers,
                "threshold": res.threshold,
                "saturation_rate": res.saturation_rate,
                "stable_rate": res.stable_rate,
                "unstable_rate": (
                    None if res.unstable_rate == float("inf")
                    else res.unstable_rate
                ),
                "bracketed": res.bracketed,
                "points": res.curve(),
            }
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0

    specs = [target] if kind == "experiment" else target
    if kind == "grid":
        print(f"experiment grid: {len(target)} cells (loop={target.loop})")
    with WorkerPool(workers=args.workers,
                    chunk_size=args.chunk_size) as run_pool:
        result = run_grid(specs, pool=run_pool)
    rows = result.rows()
    closed = [r for r in result.results if isinstance(r.stats, ShardStats)]
    streamed = [r for r in result.results if not isinstance(r.stats, ShardStats)]
    if closed:
        display = [
            {k: r[k] for k in ("scenario", "cycles", "delivered", "dropped",
                               "mean_latency", "p95_latency", "seconds")}
            for r in rows if "throughput" in r
        ]
        print(format_table(display))
        agg = result.aggregate_stats
        print(f"\naggregate over {len(closed)} closed-loop cell(s): {agg}")
    if streamed:
        display = [
            {k: r[k] for k in ("scenario", "rate", "offered_rate",
                               "delivered_rate", "delivery_ratio", "backlog",
                               "seconds")}
            for r in rows if "delivery_ratio" in r
        ]
        print(format_table(display))
    print(f"wall clock: {result.seconds:.3f} s on {result.workers} worker(s)")

    check_failed = False
    if args.check_single:
        single = run_grid(specs, workers=0)
        identical = all(
            a.stats == b.stats for a, b in zip(result.results, single.results)
        )
        check_failed = not identical
        print(f"single-process reference: identical stats: {identical}")
    if args.out:
        from repro.reports import write_run_bundle

        write_run_bundle(
            result.results, args.out,
            source={"kind": kind, kind: target.to_dict()},
        )
        print(f"wrote per-cell artifacts: {args.out}")
    if args.json:
        payload = {
            "kind": kind,
            kind: target.to_dict(),
            "workers": result.workers,
            "seconds": round(result.seconds, 4),
            "rows": rows,
        }
        if closed:
            agg = result.aggregate_stats
            payload["aggregate"] = {
                "cycles": agg.cycles, "injected": agg.injected,
                "delivered": agg.delivered, "dropped": agg.dropped,
                "mean_latency": agg.mean_latency,
                "p95_latency": agg.p95_latency,
                "max_latency": agg.max_latency,
                "mean_hops": agg.mean_hops,
                "throughput": agg.throughput,
            }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 1 if check_failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    _install_signal_handlers()
    return serve(host=args.host, port=args.port, workers=args.workers,
                 chunk_size=args.chunk_size, max_retries=args.max_retries)


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import time
    import warnings

    from repro.analysis.reporting import format_table
    from repro.simulator.shard_driver import ScenarioGrid, run_grid

    # the stderr note is what a terminal user actually sees (Python's
    # default filters hide DeprecationWarning outside __main__); the
    # warning is what test suites and -W error catch
    print("warning: `repro sweep` is deprecated; use `repro run "
          "<spec.json>` with a grid JSON (see docs/experiments.md)",
          file=sys.stderr)
    warnings.warn(
        "`repro sweep` is deprecated; use `repro run <spec.json>` with a "
        "grid JSON (see docs/experiments.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    grid = ScenarioGrid(
        mhk=[_parse_mhk(s) for s in (args.mhk or ["2,8,1"])],
        patterns=args.pattern or ["uniform"],
        loads=args.packets or [1000],
        fault_sets=[_parse_fault_set(s) for s in (args.fault_set or [""])],
        seeds=list(range(args.seeds)),
        link_capacity=args.capacity,
        batches=args.batches,
        cycles_per_batch=args.cycles_per_batch,
        controller=args.controller,
        engine=args.engine,
        route_mode=args.route_mode,
        shards=args.shards,
    )
    print(f"scenario grid: {len(grid)} scenarios "
          f"({len(grid.mhk)} sizes x {len(grid.patterns)} patterns x "
          f"{len(grid.loads)} loads x {len(grid.fault_sets)} fault sets x "
          f"{len(grid.seeds)} seeds)")
    result = run_grid(grid, workers=args.workers, chunk_size=args.chunk_size)
    rows = result.rows()
    display = [
        {k: r[k] for k in ("scenario", "cycles", "delivered", "dropped",
                           "mean_latency", "p95_latency", "seconds")}
        for r in rows
    ]
    print(format_table(display))
    agg = result.aggregate_stats
    print(f"\naggregate over {len(rows)} scenarios: {agg}")
    print(f"wall clock: {result.seconds:.3f} s on {result.workers} worker(s)")

    check_failed = False
    if args.check_single:
        t0 = time.perf_counter()
        single = run_grid(grid, workers=0)
        t_single = time.perf_counter() - t0
        identical = single.aggregate_stats == agg
        check_failed = not identical
        print(f"single-process reference: {t_single:.3f} s, "
              f"speedup {t_single / result.seconds:.2f}x, "
              f"identical aggregate: {identical}")
    if args.json:
        # record engine + workers so published curves state what produced
        # them (reproducibility: rerunning the JSON spec must match)
        payload = {
            "grid": grid.to_dict(),
            "engine": grid.engine,
            "route_mode": grid.route_mode,
            "workers": result.workers,
            "seconds": round(result.seconds, 4),
            "scenarios": rows,
            "aggregate": {
                "cycles": agg.cycles, "injected": agg.injected,
                "delivered": agg.delivered, "dropped": agg.dropped,
                "mean_latency": agg.mean_latency,
                "p95_latency": agg.p95_latency,
                "max_latency": agg.max_latency,
                "mean_hops": agg.mean_hops,
                "throughput": agg.throughput,
            },
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 1 if check_failed else 0


def _cmd_saturate(args: argparse.Namespace) -> int:
    import json
    import warnings

    from repro.analysis.reporting import format_table
    from repro.experiments import ExperimentSpec
    from repro.simulator.streaming import find_saturation

    print("warning: `repro saturate` is deprecated; use `repro run "
          "<spec.json>` with a stream spec and --rates (see "
          "docs/experiments.md)", file=sys.stderr)
    warnings.warn(
        "`repro saturate` is deprecated; use `repro run <spec.json>` with "
        "a stream spec and --rates (see docs/experiments.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    m, h, k = _parse_mhk(args.mhk)
    n = m ** h
    if args.rates:
        rates = [float(x) for x in args.rates.split(",")]
    else:
        # geometric ladder up to the machine's aggregate link budget;
        # uniform traffic on B_{m,h} saturates well inside it
        top = n * args.capacity
        rates = [top / 16, top / 8, top / 4, top / 2, float(top)]
    warmup = args.warmup if args.warmup >= 0 else args.cycles // 5
    window = args.window if args.window >= 0 else max(1, args.cycles // 15)
    fault_sets = [_parse_fault_set(s) for s in (args.fault_set or [""])]

    curves = []
    for fs in fault_sets:
        base = ExperimentSpec(
            m=m, h=h, k=k, loop="stream", source=args.source,
            pattern=args.pattern,
            cycles=args.cycles, warmup=warmup, window=window,
            faults=fs, seed=args.seed, link_capacity=args.capacity,
            controller=args.controller, engine=args.engine,
            route_mode=args.route_mode,
        )
        res = find_saturation(
            base, rates, bisect=args.bisect, threshold=args.threshold,
            workers=args.workers,
        )
        label = f"faults {list(fs)}" if fs else "fault-free"
        print(f"\n{base.label} — {label}")
        print(format_table(res.curve()))
        if res.bracketed:
            print(f"saturation ~ {res.saturation_rate:.3f} pkt/cycle "
                  f"(stable {res.stable_rate:.3f}, "
                  f"unstable {res.unstable_rate:.3f}, "
                  f"threshold {res.threshold})")
        else:
            bound = "lower" if res.stable_rate else "upper"
            print(f"saturation not bracketed by the rate ladder; "
                  f"{bound} bound ~ {res.saturation_rate:.3f} pkt/cycle")
        curves.append((fs, res))

    if args.json:
        payload = {
            "machine": {"m": m, "h": h, "k": k},
            "source": args.source,
            "pattern": args.pattern,
            "cycles": args.cycles,
            "warmup": warmup,
            "window": window,
            "link_capacity": args.capacity,
            "controller": args.controller,
            # reproducibility: published curves record what produced them
            # (the pool size the ladder actually resolved to; bisection
            # probes always run inline)
            "engine": args.engine,
            "route_mode": args.route_mode,
            "workers": curves[0][1].workers,
            "threshold": args.threshold,
            "rates": rates,
            "seed": args.seed,
            "curves": [
                {
                    "fault_set": [list(f) for f in fs],
                    "saturation_rate": res.saturation_rate,
                    "stable_rate": res.stable_rate,
                    "unstable_rate": (
                        None if res.unstable_rate == float("inf")
                        else res.unstable_rate
                    ),
                    "bracketed": res.bracketed,
                    "points": res.curve(),
                }
                for fs, res in curves
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant de Bruijn and shuffle-exchange networks "
                    "(Bruck, Cypher, Ho; ICPP 1992)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    b = sub.add_parser("build", help="construct a graph and print vitals")
    b.add_argument("kind", choices=["debruijn", "ft", "se", "natural-ft-se", "sp", "bus"])
    b.add_argument("--m", type=int, default=2)
    b.add_argument("--h", type=int, default=4)
    b.add_argument("--k", type=int, default=1)
    b.set_defaults(func=_cmd_build)

    v = sub.add_parser("verify", help="run a (k, G)-tolerance check")
    v.add_argument("--m", type=int, default=2)
    v.add_argument("--h", type=int, default=3)
    v.add_argument("--k", type=int, default=1)
    v.add_argument("--target", choices=["debruijn", "se"], default="debruijn")
    v.add_argument("--samples", type=int, default=0,
                   help="random sample count (0 = exhaustive)")
    v.add_argument("--seed", type=int, default=0)
    v.set_defaults(func=_cmd_verify)

    r = sub.add_parser(
        "report",
        help="build a registered report (with an optional reproducibility "
             "bundle) or regenerate legacy paper figures/tables",
        description="Names from the REPORTS registry (e.g. "
                    "dependability-surface, paper-tables) execute their "
                    "experiment grids on one warm worker pool, print the "
                    "aggregated tables, and with --bundle emit a "
                    "self-describing, byte-identical-on-regeneration "
                    "bundle (manifest.json + raw per-cell results + "
                    "CSV/JSON tables + markdown summary).  Legacy "
                    "analysis ids keep their old behavior; --list shows "
                    "both groups.  See docs/reports.md.",
    )
    r.add_argument("ids", nargs="*",
                   help="report names or legacy experiment ids "
                   "(default: all legacy figures)")
    r.add_argument("--bundle", default=None, metavar="DIR",
                   help="write the reproducibility bundle into DIR "
                   "(must be empty/nonexistent; registered reports only)")
    r.add_argument("--quick", action="store_true",
                   help="build the QUICK-sized parameterization "
                   "(CI/test scale) instead of the full surface")
    r.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: one per CPU core; "
                   "0 = run inline)")
    r.add_argument("--chunk-size", type=int, default=None,
                   help="tasks per work-stealing chunk (default: auto)")
    r.add_argument("--list", action="store_true",
                   help="list registered reports and legacy ids, then exit")
    r.set_defaults(func=_cmd_report)

    rt = sub.add_parser("route", help="route with reconfiguration")
    rt.add_argument("src", type=int)
    rt.add_argument("dst", type=int)
    rt.add_argument("--m", type=int, default=2)
    rt.add_argument("--h", type=int, default=4)
    rt.add_argument("--k", type=int, default=1)
    rt.add_argument("--fault", type=int, action="append", default=[])
    rt.set_defaults(func=_cmd_route)

    d = sub.add_parser("demo", help="thirty-second tour")
    d.set_defaults(func=_cmd_demo)

    # live registry views: patterns/sources registered after import
    # (the documented extension path) must appear in choices= too
    from repro.simulator.traffic import PATTERNS

    pattern_names = PATTERNS.names()

    rn = sub.add_parser(
        "run",
        help="execute an experiment spec or grid JSON (the unified "
             "front door for closed-loop and open-loop runs)",
        description="One declarative JSON drives everything: an "
                    "ExperimentSpec object ({...fields...} or "
                    "{'experiment': {...}}) runs one closed-loop "
                    "workload or open-loop stream; {'grid': {...}} "
                    "expands an ExperimentGrid (sizes x patterns x "
                    "loads-or-rates x fault sets-or-models x seeds) and "
                    "sweeps it across the multi-process pool — a stream "
                    "grid with a rates axis is a saturation surface, "
                    "and a fault_model ('fixed', 'iid', 'burst', "
                    "'churn') with replicas > 1 fans seeded Monte-Carlo "
                    "realizations across the same pool.  With "
                    "--rates, a stream spec becomes a saturation "
                    "ladder: the rungs are swept in parallel and the "
                    "saturation point is bracketed and bisected.  Field "
                    "names are validated against the backend registries "
                    "before anything runs; see docs/experiments.md for "
                    "the schema.",
    )
    rn.add_argument("spec", metavar="SPEC.json",
                    help="path to the experiment/grid JSON file")
    rn.add_argument("--rates", default=None, metavar="R1,R2,...",
                    help="stream specs only: evaluate this offered-load "
                    "ladder and bisect the saturation point instead of "
                    "running the spec's single rate")
    rn.add_argument("--bisect", type=int, default=5,
                    help="bisection refinements after bracketing "
                    "(with --rates)")
    rn.add_argument("--threshold", type=float, default=0.95,
                    help="delivered/offered ratio above which a ladder "
                    "point counts as stable (with --rates)")
    rn.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: one per CPU core; "
                    "0 = run inline)")
    rn.add_argument("--chunk-size", type=int, default=None,
                    help="tasks per work-stealing chunk (default: auto)")
    rn.add_argument("--check-single", action="store_true",
                    help="also run single-process and verify every "
                    "cell's stats are bit-identical")
    rn.add_argument("--json", default=None, metavar="PATH",
                    help="write rows + aggregate (or the saturation "
                    "curve) as JSON")
    rn.add_argument("--out", default=None, metavar="DIR",
                    help="write per-cell raw artifacts + manifest.json "
                    "into DIR via the reports bundle writer (must be "
                    "empty/nonexistent; see docs/reports.md)")
    rn.set_defaults(func=_cmd_run)

    sv = sub.add_parser(
        "serve",
        help="run the experiment service: accept spec/grid JSON over "
             "HTTP on one persistent worker pool",
        description="Starts a daemon that accepts the same "
                    "ExperimentSpec/ExperimentGrid JSON as `repro run` "
                    "via POST /experiments, validates it at the door, "
                    "and schedules jobs on one warm worker pool shared "
                    "across requests.  Results are bit-identical to "
                    "`repro run` on the same JSON; per-cell rows stream "
                    "as NDJSON from /jobs/<id>/stream.  See "
                    "docs/service.md for endpoints and curl recipes.",
    )
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: 127.0.0.1)")
    sv.add_argument("--port", type=int, default=8642,
                    help="bind port (default: 8642; 0 = ephemeral)")
    sv.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: one per CPU core)")
    sv.add_argument("--chunk-size", type=int, default=None,
                    help="tasks per work-stealing chunk (default: auto)")
    sv.add_argument("--max-retries", type=int, default=2,
                    help="retries for a cell whose worker process dies "
                    "(default: 2)")
    sv.set_defaults(func=_cmd_serve)

    be = sub.add_parser(
        "bench-engines",
        help="race the object vs. batch simulation engines on one workload",
    )
    be.add_argument("--m", type=int, default=2)
    be.add_argument("--h", type=int, default=8)
    be.add_argument("--k", type=int, default=1)
    be.add_argument("--pattern", choices=pattern_names, default="uniform")
    be.add_argument("--packets", type=int, default=20_000)
    be.add_argument("--batches", type=int, default=1,
                    help="split the workload into this many injection batches")
    be.add_argument("--capacity", type=int, default=1)
    be.add_argument("--cycles-per-batch", type=int, default=0)
    be.add_argument("--fault", action="append", default=[], metavar="CYCLE:NODE",
                    help="schedule a node fault (repeatable)")
    be.add_argument("--seed", type=int, default=0)
    be.set_defaults(func=_cmd_bench_engines)

    sw = sub.add_parser(
        "sweep",
        help="deprecated: run a closed-loop scenario grid by flags "
             "(use `run` with a grid JSON)",
        description="Declarative scenario sweep: the cartesian product of "
                    "--mhk x --pattern x --packets x --fault-set x seeds "
                    "runs across a chunked work-stealing process pool; "
                    "per-scenario results and the exact merged aggregate "
                    "are printed (and optionally written as JSON).  "
                    "Worker-count guidance: one worker per physical core "
                    "(the default) — workers are processes, so "
                    "oversubscribing cores buys nothing.",
    )
    sw.add_argument("--mhk", action="append", default=None, metavar="M,H,K",
                    help="graph size, repeatable (default 2,8,1)")
    sw.add_argument("--pattern", action="append", choices=pattern_names,
                    default=None, help="traffic pattern, repeatable")
    sw.add_argument("--packets", action="append", type=int, default=None,
                    help="packets per scenario, repeatable")
    sw.add_argument("--fault-set", action="append", default=None,
                    metavar="CYCLE:NODE[,...]",
                    help="fault schedule, repeatable ('' = fault-free)")
    sw.add_argument("--seeds", type=int, default=1,
                    help="seed replicas per cell (seeds 0..N-1)")
    sw.add_argument("--capacity", type=int, default=1)
    sw.add_argument("--batches", type=int, default=1)
    sw.add_argument("--cycles-per-batch", type=int, default=0)
    sw.add_argument("--controller", choices=["reconfig", "detour"],
                    default="reconfig")
    sw.add_argument("--engine", choices=["object", "batch"], default="batch",
                    help="simulation engine per scenario (recorded in the "
                    "JSON so published curves are reproducible)")
    sw.add_argument("--route-mode", choices=["bfs", "table"], default="bfs",
                    help="detour-baseline routing backend: per-pair BFS "
                    "(reference) or a table compiled once per fault epoch "
                    "(vectorized; conformance-tested hop-equivalent); "
                    "ignored by --controller reconfig")
    sw.add_argument("--shards", type=int, default=1,
                    help="split each scenario's batches over this many tasks")
    sw.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: one per CPU core; "
                    "0 = run inline)")
    sw.add_argument("--chunk-size", type=int, default=None,
                    help="tasks per work-stealing chunk (default: auto)")
    sw.add_argument("--check-single", action="store_true",
                    help="also run single-process and verify the merged "
                    "aggregate is bit-identical")
    sw.add_argument("--json", default=None, metavar="PATH",
                    help="write per-scenario rows + aggregate as JSON")
    sw.set_defaults(func=_cmd_sweep)

    from repro.simulator.sources import SOURCES

    source_names = SOURCES.names()

    st = sub.add_parser(
        "saturate",
        help="deprecated: offered-load vs delivered-throughput curves "
             "by flags (use `run` with a stream spec and --rates)",
        description="Open-loop load sweep: a seeded traffic source "
                    "streams arrivals per cycle at each rung of a rate "
                    "ladder (in parallel across worker processes), the "
                    "saturation point is bracketed and bisected, and "
                    "one curve is emitted per --fault-set.  Rates are "
                    "aggregate packets per cycle; a point counts as "
                    "stable while delivered/offered stays above "
                    "--threshold inside the measurement window.",
    )
    st.add_argument("--mhk", default="2,6,1", metavar="M,H,K",
                    help="machine size (default 2,6,1)")
    st.add_argument("--source", choices=source_names, default="poisson")
    st.add_argument("--pattern", choices=pattern_names, default="uniform")
    st.add_argument("--rates", default=None, metavar="R1,R2,...",
                    help="offered-load ladder in pkt/cycle (default: a "
                    "geometric ladder up to n * capacity)")
    st.add_argument("--cycles", type=int, default=1500,
                    help="injection horizon per point (cycles)")
    st.add_argument("--warmup", type=int, default=-1,
                    help="cycles excluded from measurement "
                    "(default: cycles/5)")
    st.add_argument("--window", type=int, default=-1,
                    help="window-series granularity "
                    "(default: cycles/15; 0 disables)")
    st.add_argument("--fault-set", action="append", default=None,
                    metavar="CYCLE:NODE[,...]",
                    help="fault schedule, repeatable ('' = fault-free); "
                    "one saturation curve per set")
    st.add_argument("--bisect", type=int, default=5,
                    help="bisection refinements after bracketing")
    st.add_argument("--threshold", type=float, default=0.95,
                    help="delivered/offered ratio above which a point "
                    "counts as stable")
    st.add_argument("--capacity", type=int, default=1)
    st.add_argument("--controller", choices=["reconfig", "detour"],
                    default="reconfig")
    st.add_argument("--engine", choices=["object", "batch"], default="batch")
    st.add_argument("--route-mode", choices=["bfs", "table"], default="bfs",
                    help="detour-baseline routing backend (see sweep)")
    st.add_argument("--seed", type=int, default=0)
    st.add_argument("--workers", type=int, default=None,
                    help="worker processes for the ladder phase "
                    "(default: one per CPU core; 0 = inline)")
    st.add_argument("--json", default=None, metavar="PATH",
                    help="write the curves + saturation points as JSON")
    st.set_defaults(func=_cmd_saturate)
    return p


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
