"""Digit-string labels, ranks, and rotations (paper Section II).

The paper writes the ``h``-digit base-``m`` representation of ``x`` as
``[x_{h-1}, x_{h-2}, ..., x_0]_m`` (big-endian).  This module provides the
conversions and the string operations (cyclic shifts, exchange, weight,
necklaces) that both de Bruijn and shuffle-exchange definitions are built
from, plus the ``Rank`` function that drives the reconfiguration algorithm.

All bulk operations are vectorized over node arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "to_digits",
    "from_digits",
    "format_label",
    "rank",
    "rank_array",
    "rotate_left",
    "rotate_right",
    "exchange",
    "weight",
    "necklace_of",
    "necklaces",
    "validate_base",
    "validate_h",
]


def validate_base(m: int) -> int:
    """Validate a de Bruijn base (paper: ``m >= 2``)."""
    m = int(m)
    if m < 2:
        raise ParameterError(f"base m must be >= 2, got {m}")
    return m


def validate_h(h: int, *, minimum: int = 1) -> int:
    """Validate a digit count.  The paper's theorems assume ``h >= 3``;
    callers that state theorems pass ``minimum=3``."""
    h = int(h)
    if h < minimum:
        raise ParameterError(f"digit count h must be >= {minimum}, got {h}")
    return h


def to_digits(x: int | np.ndarray, m: int, h: int) -> np.ndarray:
    """Big-endian digits ``[x_{h-1}, ..., x_0]`` of ``x`` in base ``m``.

    Accepts a scalar (returns shape ``(h,)``) or an array of node ids
    (returns shape ``(len(x), h)``).

    >>> to_digits(6, 2, 4).tolist()
    [0, 1, 1, 0]
    """
    m = validate_base(m)
    h = validate_h(h)
    xs = np.asarray(x, dtype=np.int64)
    if xs.size and (xs.min() < 0 or xs.max() >= m ** h):
        raise ParameterError(f"value out of range [0, {m**h}) for {h} base-{m} digits")
    out_shape = xs.shape + (h,)
    rem = xs.reshape(-1).copy()
    digits = np.empty((rem.size, h), dtype=np.int64)
    for pos in range(h - 1, -1, -1):  # little-endian extraction
        digits[:, pos] = rem % m
        rem //= m
    digits = digits.reshape(out_shape)
    return digits if isinstance(x, np.ndarray) else digits.reshape(h)


def from_digits(digits: Sequence[int] | np.ndarray, m: int) -> int | np.ndarray:
    """Inverse of :func:`to_digits`: big-endian digits to integer(s)."""
    m = validate_base(m)
    d = np.asarray(digits, dtype=np.int64)
    if d.size and (d.min() < 0 or d.max() >= m):
        raise ParameterError(f"digit out of range [0, {m})")
    h = d.shape[-1]
    weights = m ** np.arange(h - 1, -1, -1, dtype=np.int64)
    val = (d * weights).sum(axis=-1)
    return val if d.ndim > 1 else int(val)


def format_label(x: int, m: int, h: int) -> str:
    """Render ``x`` the way the paper prints labels: ``[x_{h-1},...,x_0]_m``.

    >>> format_label(6, 2, 4)
    '[0,1,1,0]_2'
    """
    return "[" + ",".join(str(d) for d in to_digits(x, m, h)) + f"]_{m}"


def rank(x: int, s: Sequence[int] | np.ndarray) -> int:
    """``Rank(x, S)``: the number of elements of ``S`` smaller than ``x``
    (paper Section II).  ``x`` must be a member of ``S``.

    >>> rank(5, [1, 3, 5, 9])
    2
    """
    arr = np.unique(np.asarray(s, dtype=np.int64))
    i = int(np.searchsorted(arr, x))
    if i >= arr.size or arr[i] != x:
        raise ParameterError(f"rank: {x} is not a member of S")
    return i


def rank_array(xs: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Vectorized :func:`rank` for arrays of members."""
    arr = np.unique(np.asarray(s, dtype=np.int64))
    xs = np.asarray(xs, dtype=np.int64)
    pos = np.searchsorted(arr, xs)
    ok = (pos < arr.size) & (arr[np.minimum(pos, arr.size - 1)] == xs)
    if not ok.all():
        bad = xs[~ok][0]
        raise ParameterError(f"rank_array: {int(bad)} is not a member of S")
    return pos.astype(np.int64)


def rotate_left(x: int | np.ndarray, m: int, h: int, steps: int = 1) -> int | np.ndarray:
    """Cyclic left shift of the ``h``-digit base-``m`` string of ``x``.

    One left step moves digit position ``i`` to position ``(i+1) mod h``
    (the *perfect shuffle* on labels).  Vectorized over arrays.

    >>> rotate_left(0b0011, 2, 4)
    6
    """
    m = validate_base(m)
    h = validate_h(h)
    steps = int(steps) % h
    n = m ** h
    xs = np.asarray(x, dtype=np.int64)
    if xs.size and (xs.min() < 0 or xs.max() >= n):
        raise ParameterError(f"value out of range [0, {n})")
    hi = m ** (h - steps)
    top, rest = xs // hi, xs % hi
    out = rest * (m ** steps) + top
    return out if isinstance(x, np.ndarray) else int(out)


def rotate_right(x: int | np.ndarray, m: int, h: int, steps: int = 1) -> int | np.ndarray:
    """Cyclic right shift (the *unshuffle*); inverse of :func:`rotate_left`."""
    return rotate_left(x, m, h, h - (int(steps) % h))


def exchange(x: int | np.ndarray, m: int = 2) -> int | np.ndarray:
    """The exchange operation on the lowest digit.

    For base 2 this is ``x XOR 1`` (the shuffle-exchange *exchange* edge).
    For general ``m`` it cycles the low digit ``d -> (d+1) mod m`` — only
    the base-2 case appears in the paper, but the generalization keeps the
    API uniform.
    """
    m = validate_base(m)
    xs = np.asarray(x, dtype=np.int64)
    low = xs % m
    out = xs - low + (low + 1) % m
    return out if isinstance(x, np.ndarray) else int(out)


def weight(x: int | np.ndarray, m: int, h: int) -> int | np.ndarray:
    """Digit-sum (Hamming weight when ``m = 2``) of the label of ``x``.

    The parity of ``weight`` drives the shuffle-exchange -> de Bruijn
    embedding (see :mod:`repro.core.shuffle_exchange`).
    """
    d = to_digits(np.asarray(x, dtype=np.int64), m, h)
    out = d.sum(axis=-1)
    return out if isinstance(x, np.ndarray) else int(out)


def necklace_of(x: int, m: int, h: int) -> tuple[int, ...]:
    """The rotation orbit (necklace) of ``x``, as a sorted tuple of ids.

    >>> necklace_of(1, 2, 3)
    (1, 2, 4)
    """
    orbit = {int(x)}
    cur = x
    for _ in range(h - 1):
        cur = rotate_left(cur, m, h)
        orbit.add(int(cur))
    return tuple(sorted(orbit))


def necklaces(m: int, h: int) -> list[tuple[int, ...]]:
    """All necklaces of ``h``-digit base-``m`` strings, sorted by minimum
    representative.  Rotation preserves weight, so each necklace has a
    well-defined weight class — the fact behind the ψ embedding."""
    n = m ** validate_h(h)
    seen = np.zeros(n, dtype=bool)
    out: list[tuple[int, ...]] = []
    for x in range(n):
        if seen[x]:
            continue
        neck = necklace_of(x, m, h)
        for y in neck:
            seen[y] = True
        out.append(neck)
    return out
