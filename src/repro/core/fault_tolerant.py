"""The fault-tolerant de Bruijn graphs ``B^k_{m,h}`` (paper §III.B, §IV.A).

Definition (base ``m``, ``h`` digits, ``k`` tolerated faults): nodes are
``{0, 1, ..., m^h + k - 1}`` and ``(x, y)`` is an edge iff there exists

    r in { (m-1)(-k), (m-1)(-k)+1, ..., (m-1)(k+1) }

such that ``y = X(x, m, r, m^h + k)`` or ``x = X(y, m, r, m^h + k)``
(self-loops dropped).  Properties proved in the paper and enforced by the
test suite:

* ``B^0_{m,h} == B_{m,h}`` (the window collapses to the target window);
* ``B_{m,h}`` is a subgraph of ``B^k_{m,h}`` under the identity labeling
  whenever the node counts coincide modulo the extra spares — concretely
  the paper notes ``B_{2,h} ⊆ B^k_{2,h}``;
* node count ``m^h + k`` (Corollaries 1, 3) — *optimal*: any (k, G)-tolerant
  graph needs at least ``|V(G)| + k`` nodes;
* degree at most ``4k + 4`` for ``m = 2`` and ``4(m-1)k + 2m`` in general.

The heavy lifting (why any ``k`` faults leave an embedded ``B_{m,h}``) lives
in :mod:`repro.core.reconfiguration` and is verified by
:mod:`repro.core.tolerance`.
"""

from __future__ import annotations

import numpy as np

from repro.core.labels import validate_base, validate_h
from repro.core.xfunc import ft_window, predecessor_solutions, successor_block, x_func_array
from repro.errors import ParameterError
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "ft_debruijn",
    "ft_node_count",
    "ft_degree_bound",
    "neighbor_blocks",
]


def ft_node_count(m: int, h: int, k: int) -> int:
    """``|V(B^k_{m,h})| = m^h + k`` — target size plus exactly ``k`` spares."""
    if k < 0:
        raise ParameterError(f"fault budget k must be >= 0, got {k}")
    return validate_base(m) ** validate_h(h, minimum=3) + int(k)


def ft_degree_bound(m: int, k: int) -> int:
    """The paper's degree bound for ``B^k_{m,h}``: ``4(m-1)k + 2m``
    (``4k + 4`` when ``m = 2``; Corollaries 1-4)."""
    validate_base(m)
    if k < 0:
        raise ParameterError(f"fault budget k must be >= 0, got {k}")
    return 4 * (m - 1) * k + 2 * m


def ft_debruijn(m: int, h: int, k: int) -> StaticGraph:
    """Construct ``B^k_{m,h}``.

    Fully vectorized: the successor images of all nodes under the whole
    offset window are generated in one broadcast; symmetrization and
    self-loop dropping are handled by :class:`StaticGraph`.

    >>> g = ft_debruijn(2, 4, 1)       # the paper's Fig. 2 graph
    >>> g.node_count, g.max_degree() <= 8
    (17, True)
    """
    n = ft_node_count(m, h, k)
    window = ft_window(m, k)
    xs = np.arange(n, dtype=np.int64).reshape(-1, 1)
    ys = x_func_array(xs, m, window.reshape(1, -1), n)
    src = np.repeat(np.arange(n, dtype=np.int64), window.size)
    g = StaticGraph(n, np.column_stack([src, ys.reshape(-1)]))
    return g


def neighbor_blocks(m: int, h: int, k: int, x: int) -> dict[str, np.ndarray]:
    """Successor and predecessor neighbor sets of node ``x`` in ``B^k_{m,h}``.

    Returns ``{"successors": ..., "predecessors": ...}`` — the two blocks
    whose sizes the degree-accounting argument of §III.A bounds by
    ``(m-1)(2k+1)+1`` each.  Their union is exactly the adjacency of ``x``
    in :func:`ft_debruijn` (asserted in tests).
    """
    n = ft_node_count(m, h, k)
    if not 0 <= x < n:
        raise ParameterError(f"node {x} out of range [0, {n})")
    return {
        "successors": successor_block(x, m, k, n),
        "predecessors": predecessor_solutions(x, m, k, n),
    }
