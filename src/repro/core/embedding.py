"""Embedding certificates (paper Section II's embedding definition).

An *embedding* of ``G`` into ``G'`` is an injective node map ``φ`` such that
every edge of ``G`` maps onto an edge of ``G'``.  :class:`Embedding` bundles
the three graphs-and-map ingredients with O(E) verification, composition
(used to chain SE -> B_{2,h} -> B^k_{2,h}), and restriction to survivor
subgraphs — the exact operations the paper's arguments compose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EmbeddingError
from repro.graphs.isomorphism import verify_embedding
from repro.graphs.static_graph import StaticGraph

__all__ = ["Embedding", "identity_embedding"]


@dataclass(frozen=True)
class Embedding:
    """A verified embedding ``pattern -> host``.

    Construction *always verifies* (raises :class:`EmbeddingError` on a bad
    certificate), so an :class:`Embedding` instance is proof-carrying: its
    existence certifies ``pattern ⊆ host`` up to relabeling.
    """

    pattern: StaticGraph
    host: StaticGraph
    node_map: np.ndarray = field(repr=False)

    def __post_init__(self):
        nm = np.asarray(self.node_map, dtype=np.int64)
        object.__setattr__(self, "node_map", nm)
        verify_embedding(self.pattern, self.host, nm, raise_on_fail=True)

    def __call__(self, v: int) -> int:
        """Image of pattern node ``v``."""
        return int(self.node_map[v])

    def compose(self, outer: "Embedding") -> "Embedding":
        """``outer ∘ self``: embed this pattern into ``outer.host``.

        Requires ``self.host`` and ``outer.pattern`` to have the same node
        count and ``self.host``'s edges to be a subset of ``outer.pattern``'s
        (identity interface), which is how the paper chains
        SE ⊆ B_{2,h} with the (k, B_{2,h})-tolerance of ``B^k_{2,h}``.
        """
        if self.host.node_count != outer.pattern.node_count:
            raise EmbeddingError(
                "compose: inner host and outer pattern sizes differ "
                f"({self.host.node_count} != {outer.pattern.node_count})"
            )
        if not self.host.is_edge_subset_of(outer.pattern):
            raise EmbeddingError(
                "compose: inner host edges are not contained in outer pattern"
            )
        return Embedding(self.pattern, outer.host, outer.node_map[self.node_map])

    def image_nodes(self) -> np.ndarray:
        """Sorted array of host nodes in the image."""
        return np.sort(self.node_map)

    def image_graph(self) -> StaticGraph:
        """The pattern pushed through the map, as a graph on the host's
        node set (edges actually used in the host)."""
        e = self.pattern.edges()
        return StaticGraph(
            self.host.node_count, self.node_map[e] if e.shape[0] else ()
        )

    def used_host_edge_fraction(self) -> float:
        """Fraction of host edges exercised by the embedded pattern —
        a redundancy metric (FT graphs keep this well below 1)."""
        if self.host.edge_count == 0:
            return 0.0
        return self.image_graph().edge_count / self.host.edge_count


def identity_embedding(pattern: StaticGraph, host: StaticGraph) -> Embedding:
    """The identity node map as an embedding (verifies ``pattern``'s edges
    are host edges verbatim) — e.g. ``B_{2,h} ⊆ B^k_{2,h}`` as noted in
    §III.B."""
    return Embedding(
        pattern, host, np.arange(pattern.node_count, dtype=np.int64)
    )
