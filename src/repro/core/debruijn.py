"""De Bruijn target graphs ``B_{m,h}`` (paper Sections III and IV).

The paper gives two equivalent definitions and relies on the second:

1. *Digit overlap* — ``x ~ y`` iff the last ``h-1`` digits of ``x`` equal
   the first ``h-1`` digits of ``y`` or vice versa.
2. *Affine* — ``(x, y)`` is an edge iff there exists ``r in {0..m-1}`` with
   ``y = X(x, m, r, m^h)`` or ``x = X(y, m, r, m^h)``.

Both constructions are implemented (the equivalence is a test), self-loops
are dropped per the paper's convention, and the resulting graphs are plain
:class:`StaticGraph` instances.
"""

from __future__ import annotations

import numpy as np

from repro.core.labels import from_digits, to_digits, validate_base, validate_h
from repro.core.xfunc import target_window, x_func_array
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "debruijn",
    "debruijn_digit_definition",
    "debruijn_directed_successors",
    "node_count",
]


def node_count(m: int, h: int) -> int:
    """``|V(B_{m,h})| = m^h``."""
    return validate_base(m) ** validate_h(h)


def debruijn_directed_successors(m: int, h: int) -> np.ndarray:
    """Successor matrix ``S`` of the *directed* de Bruijn graph:
    ``S[x, r] = (m*x + r) mod m^h`` for ``r in 0..m-1``.

    The directed view drives shift-register routing and the Ascend/Descend
    emulation; the undirected target graph is its symmetrization.
    """
    n = node_count(m, h)
    xs = np.arange(n, dtype=np.int64).reshape(-1, 1)
    return x_func_array(xs, m, target_window(m).reshape(1, -1), n)


def debruijn(m: int, h: int) -> StaticGraph:
    """The base-``m`` ``h``-digit de Bruijn graph ``B_{m,h}`` via the
    affine definition (paper's preferred form).

    ``m^h`` nodes, degree at most ``2m``; self-loops (nodes
    ``c * (m^h - 1) / (m - 1)``) are dropped.

    >>> g = debruijn(2, 4)
    >>> g.node_count, g.max_degree()
    (16, 4)
    """
    n = node_count(m, h)
    succ = debruijn_directed_successors(m, h)
    src = np.repeat(np.arange(n, dtype=np.int64), m)
    return StaticGraph(n, np.column_stack([src, succ.reshape(-1)]))


def debruijn_digit_definition(m: int, h: int) -> StaticGraph:
    """``B_{m,h}`` via the digit-overlap definition (paper's first form).

    Node ``x = [x_{h-1},...,x_0]_m`` is connected to
    ``[x_{h-2},...,x_0,r]_m`` and ``[r,x_{h-1},...,x_1]_m`` for every
    ``r in {0..m-1}``.  Kept deliberately independent of the affine code
    path so the test suite can assert the two definitions agree edge-for-
    edge (the paper's "it is easily verified" claim, made executable).
    """
    m = validate_base(m)
    h = validate_h(h)
    n = m ** h
    digits = to_digits(np.arange(n, dtype=np.int64), m, h)  # (n, h) big-endian
    edges = []
    for r in range(m):
        left = np.column_stack([digits[:, 1:], np.full((n, 1), r, dtype=np.int64)])
        right = np.column_stack([np.full((n, 1), r, dtype=np.int64), digits[:, :-1]])
        edges.append(np.column_stack([np.arange(n), from_digits(left, m)]))
        edges.append(np.column_stack([np.arange(n), from_digits(right, m)]))
    return StaticGraph(n, np.vstack(edges))
