"""Edge (link) faults, reduced to node faults (paper §I).

    "We consider only node faults, but it should be noted that edge
     faults can be tolerated by viewing a node that is incident to the
     faulty edge as being faulty."

This module makes that sentence executable and *optimal in the stated
sense*: given a set of faulty edges, it selects a minimum set of nodes
covering them (minimum vertex cover on the fault-edge subgraph) so the
spare budget is consumed as slowly as possible.  The fault-edge graphs
arising in practice are tiny (≤ k edges), so exact cover via branch and
bound is cheap.

Mixed fault sets (nodes + edges) are supported; the result plugs
directly into the standard reconfiguration path.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.reconfiguration import rank_remap
from repro.errors import FaultSetError
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "minimum_cover_nodes",
    "edge_faults_to_node_faults",
    "reconfigure_with_edge_faults",
]


def minimum_cover_nodes(edges: list[tuple[int, int]]) -> list[int]:
    """A minimum vertex cover of the given edge list (exact, branch and
    bound; intended for fault sets of at most a few dozen edges).

    >>> minimum_cover_nodes([(0, 1), (1, 2)])
    [1]
    """
    uniq = sorted({(min(u, v), max(u, v)) for u, v in edges if u != v})
    if not uniq:
        return []
    nodes = sorted({v for e in uniq for v in e})
    # try cover sizes 1..len(nodes); the fault sets are tiny so the
    # combinatorial loop is bounded by C(2|E|, |E|) in the worst case.
    for size in range(1, len(nodes) + 1):
        for cand in combinations(nodes, size):
            cset = set(cand)
            if all(u in cset or v in cset for u, v in uniq):
                return sorted(cand)
    return nodes  # pragma: no cover - unreachable (full set always covers)


def edge_faults_to_node_faults(
    g: StaticGraph,
    edge_faults: list[tuple[int, int]],
    node_faults=(),
) -> np.ndarray:
    """Combined effective node-fault set for mixed node+edge faults.

    Every faulty edge must be a real edge of ``g``; the cover is chosen
    to avoid double-charging nodes that are already faulty (their
    incident faulty edges are covered for free).
    """
    nf = {int(v) for v in node_faults}
    remaining = []
    for u, v in edge_faults:
        u, v = int(u), int(v)
        if not g.has_edge(u, v):
            raise FaultSetError(f"({u}, {v}) is not an edge of the graph")
        if u not in nf and v not in nf:
            remaining.append((u, v))
    cover = minimum_cover_nodes(remaining)
    return np.array(sorted(nf | set(cover)), dtype=np.int64)


def reconfigure_with_edge_faults(
    ft: StaticGraph,
    target_size: int,
    edge_faults: list[tuple[int, int]],
    node_faults=(),
    *,
    budget: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Full §I pipeline: reduce edge faults to node faults, check the
    spare budget, and return ``(phi, effective_node_faults)``.

    ``budget`` defaults to ``ft.node_count - target_size`` (= k).
    """
    eff = edge_faults_to_node_faults(ft, edge_faults, node_faults)
    k = ft.node_count - target_size if budget is None else int(budget)
    if eff.size > k:
        raise FaultSetError(
            f"{eff.size} effective node faults exceed the budget k={k} "
            f"(edge faults may cost one node each)"
        )
    return rank_remap(ft.node_count, eff, target_size), eff
