"""The reconfiguration algorithm (paper §III.A) and its incremental form.

Given a fault-tolerant graph on ``N + k`` nodes and a set of faulty nodes,
the paper's reconfiguration maps target node ``x`` to the ``(x+1)``-st
non-faulty node — the unique monotonically increasing bijection ``φ`` from
``{0..N-1}`` onto the surviving node set.  Writing ``δ_x = φ(x) - x``,
Lemma 1 gives ``a < b  ⇒  δ_a <= δ_b`` and ``0 <= δ_x <= k``; those two
facts are all Theorems 1 and 2 need.

:class:`Reconfigurator` maintains ``φ`` under *incremental* fault arrival
and repair in O(1) amortized bookkeeping plus O(N) refresh, and exposes the
vectorized map for bulk relabeling.  If fewer than ``k`` nodes are faulty
the remaining spares are simply never used (the theorem holds for any
survivor set of size >= N; we take the first N survivors).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultSetError
from repro.graphs.static_graph import StaticGraph

__all__ = ["rank_remap", "Reconfigurator"]


def rank_remap(total_nodes: int, faults: np.ndarray | list[int], target_size: int) -> np.ndarray:
    """The paper's map ``φ`` as an array: ``phi[x]`` = the ``(x+1)``-st
    non-faulty node of ``{0..total_nodes-1}``, for ``x < target_size``.

    Raises :class:`FaultSetError` when fewer than ``target_size`` nodes
    survive.

    >>> rank_remap(6, [2], 5).tolist()
    [0, 1, 3, 4, 5]
    """
    faults = np.unique(np.asarray(faults, dtype=np.int64))
    if faults.size and (faults[0] < 0 or faults[-1] >= total_nodes):
        raise FaultSetError("fault id out of range")
    alive = np.ones(total_nodes, dtype=bool)
    alive[faults] = False
    survivors = np.flatnonzero(alive)
    if survivors.size < target_size:
        raise FaultSetError(
            f"only {survivors.size} survivors < target size {target_size}"
        )
    return survivors[:target_size].astype(np.int64)


class Reconfigurator:
    """Maintains the survivor mapping of a fault-tolerant machine.

    Parameters
    ----------
    total_nodes:
        ``N + k`` — node count of the fault-tolerant graph.
    target_size:
        ``N`` — node count of the target graph being sustained.

    The object tracks the live fault set; :meth:`phi` returns the current
    monotone remap, :meth:`delta` the offset vector ``δ``, and
    :meth:`embed_target` relabels a target graph onto the survivors to
    produce the physical edge set in use after reconfiguration (the solid
    edges of the paper's Fig. 3).
    """

    def __init__(self, total_nodes: int, target_size: int):
        if target_size < 0 or total_nodes < target_size:
            raise FaultSetError(
                f"need total_nodes >= target_size >= 0, got {total_nodes}, {target_size}"
            )
        self._total = int(total_nodes)
        self._target = int(target_size)
        self._faults: set[int] = set()
        self._phi_cache: np.ndarray | None = None

    # -- fault management ----------------------------------------------------

    @property
    def spare_budget(self) -> int:
        """Maximum faults sustainable: ``total_nodes - target_size``."""
        return self._total - self._target

    @property
    def faults(self) -> tuple[int, ...]:
        """Sorted tuple of currently-faulty node ids."""
        return tuple(sorted(self._faults))

    def fail_node(self, v: int) -> None:
        """Mark ``v`` faulty.  Raises when the spare budget is exhausted or
        ``v`` is already faulty/out of range."""
        v = int(v)
        if not 0 <= v < self._total:
            raise FaultSetError(f"node {v} out of range [0, {self._total})")
        if v in self._faults:
            raise FaultSetError(f"node {v} is already faulty")
        if len(self._faults) >= self.spare_budget:
            raise FaultSetError(
                f"fault budget exhausted ({self.spare_budget} spares)"
            )
        self._faults.add(v)
        self._phi_cache = None

    def repair_node(self, v: int) -> None:
        """Return ``v`` to service."""
        v = int(v)
        if v not in self._faults:
            raise FaultSetError(f"node {v} is not faulty")
        self._faults.remove(v)
        self._phi_cache = None

    def set_faults(self, faults) -> None:
        """Replace the whole fault set at once."""
        fs = {int(v) for v in faults}
        for v in fs:
            if not 0 <= v < self._total:
                raise FaultSetError(f"node {v} out of range [0, {self._total})")
        if len(fs) > self.spare_budget:
            raise FaultSetError(
                f"{len(fs)} faults exceed spare budget {self.spare_budget}"
            )
        self._faults = fs
        self._phi_cache = None

    # -- the map --------------------------------------------------------------

    def phi(self) -> np.ndarray:
        """Current monotone remap: ``phi()[x]`` is the physical node hosting
        logical node ``x`` (length ``target_size``)."""
        if self._phi_cache is None:
            self._phi_cache = rank_remap(
                self._total, sorted(self._faults), self._target
            )
        return self._phi_cache

    def delta(self) -> np.ndarray:
        """Offset vector ``δ_x = φ(x) - x``; Lemma 1 guarantees it is
        non-decreasing with values in ``[0, k]`` (property-tested)."""
        return self.phi() - np.arange(self._target, dtype=np.int64)

    def inverse_phi(self) -> np.ndarray:
        """Physical-to-logical inverse map of length ``total_nodes``;
        ``-1`` for physical nodes not hosting any logical node (faulty or
        unused spares)."""
        inv = np.full(self._total, -1, dtype=np.int64)
        p = self.phi()
        inv[p] = np.arange(self._target, dtype=np.int64)
        return inv

    def logical_of(self, physical: int) -> int | None:
        """Logical node hosted on ``physical``, or ``None``."""
        v = self.inverse_phi()[int(physical)]
        return None if v < 0 else int(v)

    # -- embedding -------------------------------------------------------------

    def embed_target(self, target: StaticGraph) -> StaticGraph:
        """Physical edge set used after reconfiguration: target edges pushed
        through ``φ``, returned as a graph on the full ``total_nodes`` node
        set (non-hosting nodes are isolated)."""
        if target.node_count != self._target:
            raise FaultSetError(
                f"target has {target.node_count} nodes, expected {self._target}"
            )
        p = self.phi()
        e = target.edges()
        return StaticGraph(self._total, p[e] if e.shape[0] else ())
