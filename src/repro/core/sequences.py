"""De Bruijn sequences and the structural identities behind ``B_{m,h}``.

The network family the paper builds on has deep combinatorial structure,
used here both as substrate (routing/labeling sanity) and as high-value
test invariants:

* a **de Bruijn sequence** ``B(m, h)`` is a cyclic word of length ``m^h``
  over ``{0..m-1}`` containing every length-``h`` word exactly once —
  generated with the Fredricksen–Kessler–Maiorana (Lyndon word) algorithm;
* sliding an ``h``-window along it visits every node of ``B_{m,h}``
  exactly once following de Bruijn arcs: a **Hamiltonian cycle**;
* ``B_{m,h+1}`` is the **line digraph** of ``B_{m,h}`` — with integer
  labels, the isomorphism is the identity: arc ``(x, r)`` *is* node
  ``m*x + r``.
"""

from __future__ import annotations

import numpy as np

from repro.core.labels import validate_base, validate_h

__all__ = [
    "de_bruijn_sequence",
    "is_de_bruijn_sequence",
    "hamiltonian_cycle",
    "line_digraph_arcs",
]


def de_bruijn_sequence(m: int, h: int) -> list[int]:
    """The lexicographically-least de Bruijn sequence ``B(m, h)`` via the
    FKM concatenation of Lyndon words.

    >>> de_bruijn_sequence(2, 3)
    [0, 0, 0, 1, 0, 1, 1, 1]
    """
    m = validate_base(m)
    h = validate_h(h, minimum=1)
    a = [0] * (m * h)
    seq: list[int] = []

    def db(t: int, p: int) -> None:
        if t > h:
            if h % p == 0:
                seq.extend(a[1: p + 1])
        else:
            a[t] = a[t - p]
            db(t + 1, p)
            for j in range(a[t - p] + 1, m):
                a[t] = j
                db(t + 1, t)

    db(1, 1)
    return seq


def is_de_bruijn_sequence(seq: list[int], m: int, h: int) -> bool:
    """Whether ``seq`` is a valid cyclic de Bruijn sequence for (m, h):
    every ``h``-window (with wraparound) occurs exactly once."""
    m = validate_base(m)
    h = validate_h(h, minimum=1)
    n = m ** h
    if len(seq) != n:
        return False
    if any(not 0 <= int(c) < m for c in seq):
        return False
    ext = list(seq) + list(seq[: h - 1])
    seen = set()
    for i in range(n):
        word = tuple(ext[i: i + h])
        if word in seen:
            return False
        seen.add(word)
    return len(seen) == n


def hamiltonian_cycle(m: int, h: int) -> list[int]:
    """A Hamiltonian cycle of the directed ``B_{m,h}`` obtained from the
    de Bruijn sequence: node ``i`` of the cycle is the integer value of
    the window ``seq[i..i+h)``.  Consecutive nodes (cyclically) are
    de Bruijn arcs ``v -> (m*v + r) mod m^h``; tests verify this and the
    exactly-once property."""
    seq = de_bruijn_sequence(m, h)
    n = m ** h
    ext = seq + seq[: h - 1]
    cycle = []
    for i in range(n):
        val = 0
        for c in ext[i: i + h]:
            val = val * m + int(c)
        cycle.append(val)
    return cycle


def line_digraph_arcs(m: int, h: int) -> np.ndarray:
    """Arcs of ``B_{m,h}`` as integers: arc ``x -> (m*x + r) mod m^h`` is
    labeled ``m*x + r`` (NO modulus) in ``[0, m^{h+1})``.

    The identity map on these labels is an isomorphism onto the node set
    of ``B_{m,h+1}`` carrying line-digraph adjacency onto de Bruijn
    adjacency — i.e. ``B_{m,h+1} = L(B_{m,h})`` with zero bookkeeping.
    Returned as an ``(m^{h+1}, 2)`` array of (arc_label, head_node) pairs.
    """
    m = validate_base(m)
    h = validate_h(h, minimum=1)
    n = m ** h
    xs = np.repeat(np.arange(n, dtype=np.int64), m)
    rs = np.tile(np.arange(m, dtype=np.int64), n)
    labels = m * xs + rs
    heads = (m * xs + rs) % n
    return np.column_stack([labels, heads])
