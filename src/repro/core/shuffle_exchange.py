"""Shuffle-exchange networks and their de Bruijn embedding (paper §I).

The point-to-point shuffle-exchange network ``SE_h`` has ``2^h`` nodes;
node ``x`` is joined to ``rot(x)`` (*shuffle*: cyclic left shift),
``rot^{-1}(x)`` (*unshuffle* — same undirected edge set) and ``x XOR 1``
(*exchange*).  Degree 3 (self-loops on the all-0/all-1 strings dropped).

For fault tolerance the paper does not build a new graph: it invokes the
result that ``SE_h`` is a subgraph of ``B_{2,h}`` *of the same size* (its
reference [7]) so the (k, B_{2,h})-tolerant graph ``B^k_{2,h}`` is
automatically (k, SE_h)-tolerant with degree ``4k + 4``.  The reference
gives no construction, so this module supplies one, derived from first
principles and verified exhaustively in the test suite:

    ψ(u) = u            if popcount(u) is even,
    ψ(u) = rot^{-1}(u)  if popcount(u) is odd.

*Correctness sketch* (executable proofs in ``tests/test_shuffle_exchange``):

* ψ is a bijection — rotation preserves Hamming weight, so each parity
  class maps into itself, injectively.
* Shuffle edge ``(u, rot(u))``: both endpoints share a parity, so the image
  is ``(u, rot(u))`` or ``(rot^{-1}(u), u)`` — in both cases a de Bruijn
  shift edge.
* Exchange edge ``(u, u⊕1)``: the endpoints have *opposite* parity (flipping
  one bit changes the weight by one).  With ``e`` the even endpoint, the
  image pair is ``(e, rot^{-1}(e ⊕ 1))`` and
  ``rot^{-1}(e ⊕ 1) = (e >> 1) | (¬e₀ << (h-1))`` — precisely the de Bruijn
  predecessor ``π_{¬e₀}(e)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.debruijn import debruijn
from repro.core.embedding import Embedding
from repro.core.fault_tolerant import ft_debruijn
from repro.core.labels import rotate_left, rotate_right, validate_h, weight
from repro.errors import ParameterError
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "shuffle_exchange",
    "se_node_count",
    "psi_map",
    "embed_se_in_debruijn",
    "embed_se_in_ft_debruijn",
    "ft_shuffle_exchange",
]


def se_node_count(h: int) -> int:
    """``|V(SE_h)| = 2^h``."""
    return 1 << validate_h(h)


def shuffle_exchange(h: int) -> StaticGraph:
    """The shuffle-exchange network ``SE_h``.

    >>> g = shuffle_exchange(3)
    >>> g.node_count, g.max_degree()
    (8, 3)
    """
    n = se_node_count(h)
    xs = np.arange(n, dtype=np.int64)
    shuffle = np.column_stack([xs, rotate_left(xs, 2, h)])
    exch = np.column_stack([xs, xs ^ 1])
    return StaticGraph(n, np.vstack([shuffle, exch]))


def psi_map(h: int) -> np.ndarray:
    """The embedding map ψ: ``SE_h -> B_{2,h}`` as an array.

    ``psi[u] = u`` when ``popcount(u)`` is even, else the cyclic right shift
    of ``u``.  Verified to be a valid embedding for all SE edges by
    :func:`embed_se_in_debruijn` (which raises if the certificate ever
    failed — it cannot, by the argument in the module docstring).
    """
    n = se_node_count(h)
    xs = np.arange(n, dtype=np.int64)
    odd = (weight(xs, 2, h) % 2).astype(bool)
    psi = xs.copy()
    psi[odd] = rotate_right(xs[odd], 2, h)
    return psi


def embed_se_in_debruijn(h: int) -> Embedding:
    """Proof-carrying embedding ``SE_h ⊆ B_{2,h}`` via ψ.

    This is the reproduction of the paper's reference-[7] ingredient: the
    returned object verifies every SE edge lands on a de Bruijn edge.
    """
    return Embedding(shuffle_exchange(h), debruijn(2, h), psi_map(h))


def embed_se_in_ft_debruijn(h: int, k: int, faults=()) -> Embedding:
    """Embedding of ``SE_h`` into the survivors of ``B^k_{2,h}``.

    Chains ψ with the paper's reconfiguration map φ for the given fault
    set: logical SE node ``x`` is hosted on physical node ``φ(ψ(x))``.
    With no faults this reduces to ψ followed by the first-``2^h`` spares
    identity.
    """
    from repro.core.reconfiguration import Reconfigurator

    n = se_node_count(h)
    ft = ft_debruijn(2, h, k)
    rec = Reconfigurator(ft.node_count, n)
    rec.set_faults(faults)
    phi = rec.phi()
    return Embedding(shuffle_exchange(h), ft, phi[psi_map(h)])


def ft_shuffle_exchange(h: int, k: int) -> StaticGraph:
    """The fault-tolerant shuffle-exchange network of the paper: simply
    ``B^k_{2,h}`` (degree ``4k + 4``), relied upon through ψ.

    Contrast with the *natural labeling* construction
    (:func:`repro.core.baselines.natural_ft_shuffle_exchange`) whose degree
    is ``~6k`` — the comparison the paper highlights in §I.
    """
    if k < 0:
        raise ParameterError(f"fault budget k must be >= 0, got {k}")
    return ft_debruijn(2, h, k)
