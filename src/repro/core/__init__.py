"""The paper's constructions: de Bruijn, FT de Bruijn, shuffle-exchange, buses."""

from repro.core.labels import (
    exchange,
    format_label,
    from_digits,
    necklace_of,
    necklaces,
    rank,
    rank_array,
    rotate_left,
    rotate_right,
    to_digits,
    weight,
)
from repro.core.xfunc import (
    ft_window,
    predecessor_solutions,
    successor_block,
    target_window,
    wrap_count,
    x_func,
    x_func_array,
)
from repro.core.debruijn import (
    debruijn,
    debruijn_digit_definition,
    debruijn_directed_successors,
    node_count,
)
from repro.core.fault_tolerant import (
    ft_debruijn,
    ft_degree_bound,
    ft_node_count,
    neighbor_blocks,
)
from repro.core.reconfiguration import Reconfigurator, rank_remap
from repro.core.embedding import Embedding, identity_embedding
from repro.core.shuffle_exchange import (
    embed_se_in_debruijn,
    embed_se_in_ft_debruijn,
    ft_shuffle_exchange,
    psi_map,
    se_node_count,
    shuffle_exchange,
)
from repro.core.tolerance import (
    ToleranceReport,
    adversarial_fault_sets,
    embed_after_faults,
    exhaustive_tolerance_check,
    max_tolerated_faults,
    random_tolerance_check,
)
from repro.core.buses import (
    bus_debruijn,
    bus_degree_bound,
    bus_degree_bound_basem,
    bus_ft_debruijn,
    bus_ft_debruijn_basem,
    reconfigure_with_bus_faults,
    verify_bus_embedding,
)
from repro.core.baselines import (
    natural_ft_se_degree_bound,
    natural_ft_shuffle_exchange,
    samatham_pradhan,
    sp_colour_copies,
    sp_node_count,
    sp_reconfigure,
    sp_reported_degree,
)
from repro.core.bounds import (
    ConstructionSpec,
    corollary_table,
    optimal_ft_node_count,
    paper_constructions,
    target_degree_bound,
)
from repro.core.edge_faults import (
    edge_faults_to_node_faults,
    minimum_cover_nodes,
    reconfigure_with_edge_faults,
)
from repro.core.sequences import (
    de_bruijn_sequence,
    hamiltonian_cycle,
    is_de_bruijn_sequence,
    line_digraph_arcs,
)

__all__ = [name for name in dir() if not name.startswith("_")]
