"""Baseline constructions the paper compares against (§I).

* **Samatham–Pradhan** [12]: tolerate ``k`` faults in ``B_{m,h}`` by using
  the *larger de Bruijn graph* ``B_{m(k+1),h}`` as the fault-tolerant
  graph.  Correctness hinges on a clean structural fact re-derived here:
  encoding each base-``m(k+1)`` digit as ``d = v + m*c`` with value
  ``v ∈ {0..m-1}`` and colour ``c ∈ {0..k}`` yields ``k + 1`` *node-disjoint*
  constant-colour copies of ``B_{m,h}``; any ``k`` faults miss at least one
  copy.  The price is ``(m(k+1))^h = N^{log_m m(k+1)}`` nodes — exponential
  blowup versus the paper's ``N + k``.

* **Natural-labeling FT shuffle-exchange**: apply the paper's §III technique
  to SE_h directly (shuffle edges are affine, ``rot(x) ∈ {2x, 2x+1} mod 2^h``,
  so they are covered by the de Bruijn FT window; exchange edges
  ``y = x ± 1`` need an extra near-diagonal band ``|φ(x) - φ(y)| <= k+1``).
  Our derivation gives degree at most ``6k + 6`` (the paper's prose says
  ``6k + 4``; the two-unit gap is documented in EXPERIMENTS.md) — either
  way it loses to the ``4k + 4`` of the ψ-relabeled construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.debruijn import debruijn, node_count
from repro.core.fault_tolerant import ft_debruijn
from repro.core.labels import to_digits, from_digits, validate_base, validate_h
from repro.errors import FaultSetError, ParameterError
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "samatham_pradhan",
    "sp_node_count",
    "sp_colour_copies",
    "sp_reconfigure",
    "sp_reported_degree",
    "natural_ft_shuffle_exchange",
    "natural_ft_se_degree_bound",
]


# --------------------------------------------------------------------------
# Samatham–Pradhan
# --------------------------------------------------------------------------

def sp_node_count(m: int, h: int, k: int) -> int:
    """``(m(k+1))^h`` — the S–P fault-tolerant graph's node count."""
    validate_base(m)
    validate_h(h)
    if k < 0:
        raise ParameterError(f"k must be >= 0, got {k}")
    return (m * (k + 1)) ** h


def sp_reported_degree(m: int, k: int) -> int:
    """The degree figure the paper's introduction quotes for S–P:
    ``2mk + 2`` (``4k + 2`` when ``m = 2``).  The constructed graph
    ``B_{m(k+1),h}`` has worst-case degree ``2m(k+1)``; benches report the
    measured value next to this quoted one."""
    return 2 * m * k + 2


def samatham_pradhan(m: int, h: int, k: int) -> StaticGraph:
    """The S–P fault-tolerant graph for target ``B_{m,h}``: simply
    ``B_{m(k+1),h}``."""
    validate_base(m)
    if k < 0:
        raise ParameterError(f"k must be >= 0, got {k}")
    return debruijn(m * (k + 1), h)


def sp_colour_copies(m: int, h: int, k: int) -> list[np.ndarray]:
    """The ``k + 1`` node-disjoint embeddings of ``B_{m,h}`` inside
    ``B_{m(k+1),h}``.

    Copy ``c`` maps the target node with digits ``(v_{h-1},...,v_0)`` to the
    big-graph node with digits ``(v_i + m*c)``.  Disjointness and edge
    preservation are verified in tests (edge preservation: a successor in
    the copy appends a digit from the same colour class, which is a legal
    big-graph successor).
    """
    n = node_count(m, h)
    target_digits = to_digits(np.arange(n, dtype=np.int64), m, h)
    big_m = m * (k + 1)
    copies = []
    for c in range(k + 1):
        copies.append(from_digits(target_digits + m * c, big_m))
    return copies


def sp_reconfigure(m: int, h: int, k: int, faults) -> np.ndarray:
    """S–P reconfiguration: return the node map of the first colour copy
    untouched by ``faults``.  Raises :class:`FaultSetError` when every copy
    is hit (cannot happen for ``len(faults) <= k`` — pigeonhole — which is
    the executable content of their theorem)."""
    fset = {int(v) for v in faults}
    for copy in sp_colour_copies(m, h, k):
        if not fset.intersection(int(v) for v in copy):
            return copy
    raise FaultSetError(
        f"all {k + 1} colour copies hit by faults (|F|={len(fset)})"
    )


# --------------------------------------------------------------------------
# Natural-labeling fault-tolerant shuffle-exchange
# --------------------------------------------------------------------------

def natural_ft_se_degree_bound(k: int) -> int:
    """Our derived bound for the natural-labeling FT-SE: ``6k + 6``
    (= ``4k + 4`` shuffle-type + ``2k + 2`` exchange-type edges).

    The paper's §I remark quotes ``6k + 4``; see EXPERIMENTS.md (SENAT) for
    the measured values and discussion.
    """
    if k < 0:
        raise ParameterError(f"k must be >= 0, got {k}")
    return 6 * k + 6


def natural_ft_shuffle_exchange(h: int, k: int) -> StaticGraph:
    """FT graph for ``SE_h`` under the *natural* (identity) labeling.

    Nodes ``0..2^h + k - 1``.  Edges:

    * the full ``B^k_{2,h}`` window edges (these cover all shuffle edges,
      since ``rot(x) = (2x + x_{h-1}) mod 2^h`` is an affine de Bruijn edge
      and Lemma 2's wrap analysis applies verbatim), and
    * a near-diagonal band ``(a, a + d)`` for ``d in 1..k+1`` covering the
      exchange edges: for ``x`` even, ``y = x + 1`` and monotonicity gives
      ``φ(y) - φ(x) in [1, k+1]``; for ``x`` odd symmetric.  No modular wrap
      is needed because φ is monotone into ``[0, 2^h + k)``.

    (k, SE_h)-tolerance under the identity logical map is verified
    exhaustively in tests.
    """
    base = ft_debruijn(2, h, k)
    n = base.node_count
    a = np.arange(n, dtype=np.int64)
    band = []
    for d in range(1, k + 2):
        src = a[: n - d]
        band.append(np.column_stack([src, src + d]))
    extra = StaticGraph(n, np.vstack(band) if band else ())
    return base.union(extra)
