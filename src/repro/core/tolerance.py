"""(k, G)-tolerance verification engines (paper Section II's definition).

``G'`` is (k, G)-tolerant when **every** survivor set of size
``|V(G')| - k`` induces a subgraph containing ``G``.  Three engines:

* :func:`embed_after_faults` — the constructive certificate for one fault
  set, using the paper's monotone remap φ (optionally composed with a
  logical pre-map such as the shuffle-exchange ψ);
* :func:`exhaustive_tolerance_check` — iterate *all* ``C(N+k, k)`` fault
  sets (small parameters; this is the executable form of Theorems 1 and 2);
* :func:`random_tolerance_check` / :func:`adversarial_fault_sets` —
  randomized and structured sampling for larger parameters.

Each engine returns a :class:`ToleranceReport`; a counterexample raises
:class:`ToleranceViolation` (or is recorded, under ``collect=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from math import comb

import numpy as np

from repro.core.reconfiguration import rank_remap
from repro.errors import FaultSetError, ToleranceViolation
from repro.graphs.isomorphism import verify_embedding
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "embed_after_faults",
    "exhaustive_tolerance_check",
    "random_tolerance_check",
    "adversarial_fault_sets",
    "ToleranceReport",
    "max_tolerated_faults",
]


@dataclass
class ToleranceReport:
    """Outcome of a tolerance sweep.

    Attributes
    ----------
    checked:
        Number of fault sets verified.
    total:
        Total number of fault sets in scope (``C(N+k, k)`` for exhaustive
        runs, the sample count otherwise).
    exhaustive:
        Whether every fault set in scope was checked.
    failures:
        Counterexample fault sets (empty iff the construction held).
    """

    checked: int
    total: int
    exhaustive: bool
    failures: list[tuple[int, ...]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no counterexample was found."""
        return not self.failures

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        mode = "exhaustive" if self.exhaustive else "sampled"
        return f"ToleranceReport({status}, {self.checked}/{self.total} {mode})"


def embed_after_faults(
    ft: StaticGraph,
    target: StaticGraph,
    faults,
    logical_map: np.ndarray | None = None,
) -> np.ndarray:
    """Constructive survivor embedding for one fault set.

    Computes the paper's monotone remap ``φ`` of the target onto the first
    ``|V(target)|`` survivors of ``ft``, optionally pre-composed with
    ``logical_map`` (target node ``x`` hosted at ``φ(logical_map[x])``,
    e.g. ψ for shuffle-exchange targets).  Verifies the certificate and
    returns the final node map; raises :class:`EmbeddingError` on failure.
    """
    phi = rank_remap(ft.node_count, np.asarray(list(faults), dtype=np.int64), target.node_count
                     if logical_map is None else int(np.max(logical_map)) + 1)
    nm = phi if logical_map is None else phi[np.asarray(logical_map, dtype=np.int64)]
    verify_embedding(target, ft, nm, raise_on_fail=True)
    return nm


def _check_one(
    ft: StaticGraph,
    target_edges: np.ndarray,
    faults: np.ndarray,
    logical_map: np.ndarray | None,
    logical_size: int,
) -> bool:
    """Fast inner loop: build φ, map edges, batch-query ``ft.has_edges``."""
    try:
        phi = rank_remap(ft.node_count, faults, logical_size)
    except FaultSetError:
        return False
    nm = phi if logical_map is None else phi[logical_map]
    if target_edges.shape[0] == 0:
        return True
    return bool(ft.has_edges(nm[target_edges[:, 0]], nm[target_edges[:, 1]]).all())


def _check_one_search(
    ft: StaticGraph, target: StaticGraph, faults: np.ndarray
) -> bool:
    """Full Hayes-model check: does ANY embedding survive this fault set?

    Falls back to backtracking subgraph-monomorphism search over the
    survivor-induced subgraph.  Exponential in the worst case — reserve
    for small graphs or auditing designs whose remap is unknown."""
    from repro.graphs.isomorphism import find_embedding

    sub, _kept = ft.without_nodes(faults)
    if sub.node_count < target.node_count:
        return False
    return find_embedding(target, sub) is not None


def exhaustive_tolerance_check(
    ft: StaticGraph,
    target: StaticGraph,
    k: int,
    logical_map: np.ndarray | None = None,
    *,
    collect: bool = False,
    strategy: str = "monotone",
) -> ToleranceReport:
    """Verify (k, target)-tolerance over **all** fault sets of size ``k``.

    ``strategy`` selects the survivor certificate:

    * ``"monotone"`` (default) — the paper's rank remap φ (optionally
      composed with ``logical_map``).  O(E) per fault set; exactly what
      Theorems 1/2 assert for the ``B^k`` family.
    * ``"search"`` — full Hayes-model tolerance: accept if *any* embedding
      of the target survives (subgraph-monomorphism search).  Use to audit
      designs whose reconfiguration map is unknown; exponential worst case.

    With ``collect=False`` (default) the first counterexample raises
    :class:`ToleranceViolation`.
    """
    if k < 0:
        raise FaultSetError(f"k must be >= 0, got {k}")
    if strategy not in ("monotone", "search"):
        raise FaultSetError(f"unknown strategy {strategy!r}")
    n = ft.node_count
    if n - k < target.node_count:
        raise FaultSetError(
            f"ft graph has {n} nodes; removing {k} cannot host {target.node_count}"
        )
    edges = target.edges()
    lm = None if logical_map is None else np.asarray(logical_map, dtype=np.int64)
    lsize = target.node_count if lm is None else int(lm.max()) + 1
    total = comb(n, k)
    report = ToleranceReport(checked=0, total=total, exhaustive=True)
    for fs in combinations(range(n), k):
        faults = np.array(fs, dtype=np.int64)
        if strategy == "monotone":
            ok = _check_one(ft, edges, faults, lm, lsize)
        else:
            ok = _check_one_search(ft, target, faults)
        report.checked += 1
        if not ok:
            report.failures.append(fs)
            if not collect:
                raise ToleranceViolation(
                    f"fault set {fs} defeats the construction", fault_set=fs
                )
    return report


def random_tolerance_check(
    ft: StaticGraph,
    target: StaticGraph,
    k: int,
    samples: int,
    rng: np.random.Generator,
    logical_map: np.ndarray | None = None,
    *,
    collect: bool = False,
) -> ToleranceReport:
    """Verify tolerance on ``samples`` uniformly random fault sets of size
    ``k`` (plus the adversarial battery from
    :func:`adversarial_fault_sets`, always included)."""
    n = ft.node_count
    edges = target.edges()
    lm = None if logical_map is None else np.asarray(logical_map, dtype=np.int64)
    lsize = target.node_count if lm is None else int(lm.max()) + 1
    batches = list(adversarial_fault_sets(n, k))
    batches += [np.sort(rng.choice(n, size=k, replace=False)) for _ in range(samples)]
    report = ToleranceReport(checked=0, total=len(batches), exhaustive=False)
    for faults in batches:
        ok = _check_one(ft, edges, np.asarray(faults, dtype=np.int64), lm, lsize)
        report.checked += 1
        if not ok:
            fs = tuple(int(v) for v in faults)
            report.failures.append(fs)
            if not collect:
                raise ToleranceViolation(
                    f"fault set {fs} defeats the construction", fault_set=fs
                )
    return report


def adversarial_fault_sets(n: int, k: int):
    """Structured fault patterns that stress the proof's extremal cases:

    * ``k`` consecutive nodes at every window start near 0, the middle and
      the wrap boundary (maximizes one δ jump — the ``s = k+1`` case);
    * evenly spread faults (maximizes the number of distinct δ values);
    * faults at the very top of the id space (spares-only);
    * faults clustered at powers of two (hits the doubling map's image).
    """
    if k == 0:
        yield np.empty(0, dtype=np.int64)
        return
    starts = {0, max(0, n // 2 - k // 2), n - k, max(0, n - 2 * k), 1 % n}
    for s in sorted(starts):
        if 0 <= s <= n - k:
            yield np.arange(s, s + k, dtype=np.int64)
    spread = np.linspace(0, n - 1, num=k, dtype=np.int64)
    yield np.unique(spread) if np.unique(spread).size == k else np.arange(k)
    pows = [1]
    while pows[-1] * 2 < n:
        pows.append(pows[-1] * 2)
    if len(pows) >= k:
        yield np.array(pows[:k], dtype=np.int64)


def max_tolerated_faults(
    ft: StaticGraph,
    target: StaticGraph,
    logical_map: np.ndarray | None = None,
    *,
    k_cap: int | None = None,
) -> int:
    """Largest ``k`` such that *every* ``k``-fault set is survivable via the
    monotone remap (exhaustive; used by the window-tightness ablation).

    Note this measures the *constructive* tolerance of φ.  A graph might in
    principle tolerate more via some other embedding; the ablation bench
    cross-checks small cases with the full subgraph-isomorphism search.
    """
    spare = ft.node_count - target.node_count
    cap = spare if k_cap is None else min(spare, k_cap)
    best = -1
    for k in range(cap + 1):
        try:
            exhaustive_tolerance_check(ft, target, k, logical_map)
        except ToleranceViolation:
            break
        best = k
    return best
