"""The affine edge generator ``X`` and the wrap-count arithmetic.

Everything in the paper reduces to the single function (Section II):

    X(x, m, r, s) = (m*x + r) mod s

The target graph ``B_{m,h}`` uses ``r in {0..m-1}`` with modulus ``m^h``;
the fault-tolerant graph ``B^k_{m,h}`` widens the window to
``r in {(m-1)(-k) .. (m-1)(k+1)}`` with modulus ``m^h + k``.  Lemmas 2 and 3
of the paper are statements about the *wrap count* ``t`` defined by
``y = m*x + r - t*s``; they are re-proved here executable (and
property-tested with hypothesis in the suite).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "x_func",
    "x_func_array",
    "target_window",
    "ft_window",
    "wrap_count",
    "successor_block",
    "predecessor_solutions",
]


def x_func(x: int, m: int, r: int, s: int) -> int:
    """``X(x, m, r, s) = (m*x + r) mod s`` — scalar form.

    >>> x_func(5, 2, 1, 16)
    11
    """
    if s <= 0:
        raise ParameterError(f"modulus s must be positive, got {s}")
    return (m * int(x) + int(r)) % s


def x_func_array(xs: np.ndarray, m: int, rs: np.ndarray | int, s: int) -> np.ndarray:
    """Vectorized ``X`` with broadcasting between node and offset arrays."""
    if s <= 0:
        raise ParameterError(f"modulus s must be positive, got {s}")
    xs = np.asarray(xs, dtype=np.int64)
    rs = np.asarray(rs, dtype=np.int64)
    return (m * xs + rs) % s


def target_window(m: int) -> np.ndarray:
    """Offset window for the target graph ``B_{m,h}``: ``{0, ..., m-1}``."""
    if m < 2:
        raise ParameterError(f"base m must be >= 2, got {m}")
    return np.arange(m, dtype=np.int64)


def ft_window(m: int, k: int) -> np.ndarray:
    """Offset window ``S`` for the fault-tolerant graph ``B^k_{m,h}``:
    ``{(m-1)(-k), (m-1)(-k)+1, ..., (m-1)(k+1)}`` (paper Sections III/IV).

    Size ``(m-1)(2k+1) + 1``; reduces to the target window when ``k = 0``.

    >>> ft_window(2, 1).tolist()
    [-1, 0, 1, 2]
    """
    if m < 2:
        raise ParameterError(f"base m must be >= 2, got {m}")
    if k < 0:
        raise ParameterError(f"fault budget k must be >= 0, got {k}")
    return np.arange((m - 1) * (-k), (m - 1) * (k + 1) + 1, dtype=np.int64)


def wrap_count(x: int, y: int, m: int, r: int, s: int) -> int:
    """The integer ``t`` with ``y = m*x + r - t*s`` (requires ``y == X(x,m,r,s)``).

    Lemma 2 (base 2) states ``t = 0`` iff ``x < y`` and ``t = 1`` iff
    ``x > y``; Lemma 3 (base m) states ``x < y`` implies
    ``t in {0..m-2}`` and ``x > y`` implies ``t in {1..m-1}``.
    """
    val = m * int(x) + int(r)
    if (val - int(y)) % s != 0:
        raise ParameterError("wrap_count: y != X(x, m, r, s)")
    return (val - int(y)) // s


def successor_block(x: int, m: int, k: int, s: int) -> np.ndarray:
    """The *successor block* of node ``x`` in ``B^k_{m,h}``: all values
    ``X(x, m, r, s)`` for ``r`` in the FT window, deduplicated, self
    excluded.  For ``m = 2`` this is the block of ``2k + 2`` consecutive
    nodes starting at ``(2x - k) mod s`` that Section V's buses connect.
    """
    ys = x_func_array(np.int64(x), m, ft_window(m, k), s)
    ys = np.unique(ys)
    return ys[ys != x % s]


def predecessor_solutions(y: int, m: int, k: int, s: int) -> np.ndarray:
    """All nodes ``x`` with ``y = X(x, m, r, s)`` for some FT-window ``r``.

    Solves ``m*x ≡ y - r (mod s)`` for each ``r``; when ``gcd(m, s) = g``
    divides ``y - r`` there are ``g`` solutions, else none.  Together with
    :func:`successor_block` this gives the exact degree accounting behind
    Corollaries 1 and 3.
    """
    g = int(np.gcd(m, s))
    m_, s_ = m // g, s // g
    inv = pow(m_, -1, s_)
    xs: list[int] = []
    for r in ft_window(m, k):
        c = (int(y) - int(r)) % s
        if c % g:
            continue
        x0 = ((c // g) * inv) % s_
        xs.extend((x0 + j * s_) % s for j in range(g))
    out = np.unique(np.array(xs, dtype=np.int64)) if xs else np.empty(0, dtype=np.int64)
    return out[out != y % s]
