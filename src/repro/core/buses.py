"""Bus implementations of de Bruijn networks (paper Section V).

Point-to-point ``B_{2,h}`` connects node ``i`` to both ``2i mod 2^h`` and
``(2i+1) mod 2^h``; replacing each such pair of links by a single bus
preserves connectivity and nearly halves the degree.  Likewise in the
fault-tolerant graph ``B^k_{2,h}`` each node ``i`` owns one bus reaching
the block of ``2k + 2`` consecutive nodes starting at
``(2i - k) mod (2^h + k)``; every node then touches exactly ``2k + 3``
buses (its own plus ``2k + 2`` memberships), versus point-to-point degree
``4k + 4``.

The paper's bus-fault rule is also implemented: because node ``i`` only
ever *transmits* on its own bus, a faulty bus is equivalent to its owner
being faulty — so bus faults are absorbed by the same reconfiguration.
"""

from __future__ import annotations

import numpy as np

from repro.core.fault_tolerant import ft_node_count
from repro.core.labels import validate_h
from repro.core.reconfiguration import rank_remap
from repro.errors import FaultSetError, ParameterError
from repro.graphs.hypergraph import BusHypergraph
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "bus_debruijn",
    "bus_ft_debruijn",
    "bus_ft_debruijn_basem",
    "bus_degree_bound",
    "bus_degree_bound_basem",
    "verify_bus_embedding",
    "reconfigure_with_bus_faults",
]


def bus_debruijn(h: int) -> BusHypergraph:
    """Fault-free bus implementation of ``B_{2,h}``: bus ``i`` connects
    node ``i`` to ``2i mod 2^h`` and ``(2i+1) mod 2^h``.

    Every node touches at most 3 buses (own + 2 memberships), versus
    point-to-point degree 4.
    """
    n = 1 << validate_h(h, minimum=3)
    buses = []
    for i in range(n):
        buses.append({i, (2 * i) % n, (2 * i + 1) % n})
    return BusHypergraph(n, buses, owners=list(range(n)))


def bus_ft_debruijn(h: int, k: int) -> BusHypergraph:
    """Bus implementation of ``B^k_{2,h}`` (paper Fig. 4 for ``h=3, k=1``).

    Bus ``i`` = ``{i} ∪ {(2i - k + j) mod (2^h + k) : j in 0..2k+1}``,
    owner ``i``.  Bus-port degree is exactly ``2k + 3`` (Section V).

    >>> bg = bus_ft_debruijn(3, 1)
    >>> bg.node_count, bg.bus_count, bg.max_bus_degree()
    (9, 9, 5)
    """
    if k < 0:
        raise ParameterError(f"fault budget k must be >= 0, got {k}")
    n = ft_node_count(2, h, k)
    buses = []
    for i in range(n):
        block = {(2 * i - k + j) % n for j in range(2 * k + 2)}
        block.add(i)
        buses.append(block)
    return BusHypergraph(n, buses, owners=list(range(n)))


def bus_degree_bound(k: int) -> int:
    """Section V's bus-port degree: ``2k + 3``."""
    if k < 0:
        raise ParameterError(f"fault budget k must be >= 0, got {k}")
    return 2 * k + 3


def bus_ft_debruijn_basem(m: int, h: int, k: int) -> BusHypergraph:
    """Base-m bus implementation of ``B^k_{m,h}`` — the generalization
    §V leaves implicit ("Buses can be used to reduce the degrees of all
    of the constructions"; only base 2 is presented there).

    Bus ``i`` = ``{i} ∪ successor-block(i)`` where the block is
    ``{(m*i + r) mod (m^h + k) : r in the FT window}``, size
    ``(m-1)(2k+1) + 1``.  Every node then touches at most
    ``(m-1)(2k+1) + 2`` buses (own + one per block containing it) —
    nearly half the point-to-point degree ``4(m-1)k + 2m``, matching the
    base-2 ``2k+3`` vs ``4k+4`` pattern.
    """
    from repro.core.labels import validate_base
    from repro.core.xfunc import ft_window

    validate_base(m)
    if k < 0:
        raise ParameterError(f"fault budget k must be >= 0, got {k}")
    n = ft_node_count(m, h, k)
    window = [int(r) for r in ft_window(m, k)]
    buses = []
    for i in range(n):
        block = {(m * i + r) % n for r in window}
        block.add(i)
        buses.append(block)
    return BusHypergraph(n, buses, owners=list(range(n)))


def bus_degree_bound_basem(m: int, k: int) -> int:
    """Bus-port bound for the base-m construction:
    ``(m-1)(2k+1) + 2`` (reduces to ``2k + 3`` at m = 2)."""
    if m < 2:
        raise ParameterError(f"base m must be >= 2, got {m}")
    if k < 0:
        raise ParameterError(f"fault budget k must be >= 0, got {k}")
    return (m - 1) * (2 * k + 1) + 2


def verify_bus_embedding(
    bg: BusHypergraph,
    target: StaticGraph,
    node_map: np.ndarray,
    healthy_buses: np.ndarray | None = None,
    *,
    directed_successors: np.ndarray | None = None,
) -> bool:
    """Check that an embedded target is *drivable* over the buses.

    For every directed target edge ``x -> y`` (``y`` a de Bruijn successor
    of ``x``; pass ``directed_successors`` as an ``(N, m)`` matrix, else
    both orientations of each undirected edge are required), the image
    ``node_map[y]`` must be a member of the bus owned by ``node_map[x]``,
    and that bus must be healthy.  This is the paper's restricted usage:
    node ``i`` always transmits on bus ``i``.
    """
    owners = bg.owners
    if owners is None:
        raise FaultSetError("bus embedding requires owner-restricted buses")
    owner_bus_of = {int(o): b for b, o in enumerate(owners)}
    healthy = np.ones(bg.bus_count, dtype=bool)
    if healthy_buses is not None:
        healthy[:] = False
        healthy[np.asarray(healthy_buses, dtype=np.int64)] = True
    if directed_successors is not None:
        pairs = [
            (x, int(y))
            for x in range(directed_successors.shape[0])
            for y in directed_successors[x]
            if int(y) != x
        ]
    else:
        e = target.edges()
        pairs = [(int(u), int(v)) for u, v in e] + [(int(v), int(u)) for u, v in e]
    for x, y in pairs:
        px, py = int(node_map[x]), int(node_map[y])
        b = owner_bus_of.get(px)
        if b is None or not healthy[b]:
            return False
        mem = bg.bus_members(b)
        j = np.searchsorted(mem, py)
        if j >= mem.size or mem[j] != py:
            return False
    return True


def reconfigure_with_bus_faults(
    h: int,
    k: int,
    node_faults=(),
    bus_faults=(),
) -> tuple[np.ndarray, np.ndarray]:
    """Full Section V reconfiguration: absorb bus faults as owner-node
    faults, then apply the monotone remap.

    Returns ``(phi, effective_faults)`` where ``phi`` maps each target node
    of ``B_{2,h}`` to its hosting physical node.  Raises
    :class:`FaultSetError` when the combined fault count exceeds ``k``.

    The returned map is guaranteed drivable: tests assert
    :func:`verify_bus_embedding` on it for the de Bruijn directed edges.
    """
    bg = bus_ft_debruijn(h, k)
    induced = bg.nodes_faulted_by_bus_faults(list(bus_faults))
    nf = np.asarray(list(node_faults), dtype=np.int64)
    eff = np.unique(np.concatenate([nf, induced]))
    if eff.size > k:
        raise FaultSetError(
            f"{eff.size} effective faults exceed the budget k={k}"
        )
    phi = rank_remap(bg.node_count, eff, 1 << h)
    return phi, eff
