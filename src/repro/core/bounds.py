"""Closed-form node and degree formulas for every construction.

This module is the single source of truth for the numbers the paper's
introduction and corollaries quote; tests assert that *measured* values
from the actual constructions match or respect these formulas, and the
comparison benches print both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import natural_ft_se_degree_bound, sp_node_count, sp_reported_degree
from repro.core.buses import bus_degree_bound
from repro.core.fault_tolerant import ft_degree_bound, ft_node_count
from repro.core.labels import validate_base, validate_h
from repro.errors import ParameterError

__all__ = [
    "ConstructionSpec",
    "target_degree_bound",
    "optimal_ft_node_count",
    "paper_constructions",
    "corollary_table",
]


def target_degree_bound(m: int) -> int:
    """Degree bound of the target ``B_{m,h}``: ``2m`` (4 for base 2)."""
    return 2 * validate_base(m)


def optimal_ft_node_count(n_target: int, k: int) -> int:
    """Minimum possible node count of any (k, G)-tolerant graph for an
    ``n_target``-node target: ``n_target + k`` (remove the k spares and you
    must still hold G).  All of the paper's constructions meet this."""
    if k < 0 or n_target < 0:
        raise ParameterError("need n_target >= 0 and k >= 0")
    return n_target + k


@dataclass(frozen=True)
class ConstructionSpec:
    """One row of the paper's implicit comparison table."""

    name: str
    nodes: int
    degree_bound: int
    source: str

    def row(self) -> tuple[str, int, int, str]:
        return (self.name, self.nodes, self.degree_bound, self.source)


def paper_constructions(m: int, h: int, k: int) -> list[ConstructionSpec]:
    """All constructions at parameters ``(m, h, k)``, ours and baselines."""
    validate_base(m)
    validate_h(h, minimum=3)
    if k < 0:
        raise ParameterError(f"k must be >= 0, got {k}")
    rows = [
        ConstructionSpec(
            f"B^{k}_{{{m},{h}}} (this paper)",
            ft_node_count(m, h, k),
            ft_degree_bound(m, k),
            "Cor. 1/3",
        ),
        ConstructionSpec(
            f"Samatham-Pradhan B_{{{m*(k+1)},{h}}}",
            sp_node_count(m, h, k),
            sp_reported_degree(m, k),
            "[12] as quoted in §I",
        ),
    ]
    if m == 2:
        rows.append(
            ConstructionSpec(
                f"FT shuffle-exchange via ψ (k={k})",
                ft_node_count(2, h, k),
                ft_degree_bound(2, k),
                "§I + [7]",
            )
        )
        rows.append(
            ConstructionSpec(
                f"FT shuffle-exchange, natural labeling (k={k})",
                ft_node_count(2, h, k),
                natural_ft_se_degree_bound(k),
                "§I remark (paper quotes 6k+4)",
            )
        )
        rows.append(
            ConstructionSpec(
                f"Bus implementation of B^{k}_{{2,{h}}}",
                ft_node_count(2, h, k),
                bus_degree_bound(k),
                "§V",
            )
        )
    return rows


def corollary_table(h: int, m_values=(2, 3, 4), k_values=(0, 1, 2, 3)) -> list[dict]:
    """Corollaries 1-4 as data: for each (m, k), the node count and degree
    bound of ``B^k_{m,h}``, plus the k=1 specializations (Cor. 2: degree 8
    for base 2; Cor. 4: degree ``6m - 4``)."""
    out = []
    for m in m_values:
        for k in k_values:
            row = {
                "m": m,
                "h": h,
                "k": k,
                "nodes": ft_node_count(m, h, k),
                "degree_bound": ft_degree_bound(m, k),
            }
            if k == 1:
                row["cor2_or_4"] = 8 if m == 2 else 6 * m - 4
            out.append(row)
    return out
