"""Text/DOT renderings of the paper's figures."""

from repro.viz.ascii_art import (
    adjacency_listing,
    bus_listing,
    relabeled_listing,
    to_dot,
)

__all__ = ["adjacency_listing", "bus_listing", "relabeled_listing", "to_dot"]
