"""Text renderings of the paper's figures.

The paper's Figures 1-5 draw nodes on a ring with chord edges.  Terminal
reproduction renders each figure as (a) a ring-ordered adjacency listing
with binary labels exactly as the paper prints them and (b) a Graphviz
DOT string (circo layout) for readers who want pixels.  Reconfiguration
figures (3, 5) mark faulty nodes and show the new logical label hosted on
each physical node — the paper's "new labels ... after one fault".
"""

from __future__ import annotations

import numpy as np

from repro.core.labels import format_label
from repro.graphs.hypergraph import BusHypergraph
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "adjacency_listing",
    "to_dot",
    "relabeled_listing",
    "bus_listing",
]


def adjacency_listing(g: StaticGraph, m: int | None = None, h: int | None = None) -> str:
    """Ring-ordered adjacency text; labels printed in paper digit style
    when (m, h) are given and the id fits."""
    lines = []
    n_digits = len(str(g.node_count - 1)) if g.node_count else 1
    for v in range(g.node_count):
        if m is not None and h is not None and v < m ** h:
            lab = f"{v:>{n_digits}} {format_label(v, m, h)}"
        else:
            lab = f"{v:>{n_digits}} (spare)" if m is not None else f"{v:>{n_digits}}"
        nbrs = ", ".join(str(int(w)) for w in g.neighbors(v))
        lines.append(f"{lab:<24} -- {{{nbrs}}}")
    return "\n".join(lines)


def to_dot(g: StaticGraph, name: str = "G", faulty=()) -> str:
    """Graphviz DOT (circo ring layout); faulty nodes drawn filled."""
    fset = {int(v) for v in faulty}
    out = [f'graph "{name}" {{', "  layout=circo;", "  node [shape=circle];"]
    for v in range(g.node_count):
        style = ' [style=filled, fillcolor=gray]' if v in fset else ""
        out.append(f"  {v}{style};")
    for u, v in g.iter_edges():
        out.append(f"  {u} -- {v};")
    out.append("}")
    return "\n".join(out)


def relabeled_listing(
    total_nodes: int, phi: np.ndarray, faults, m: int, h: int
) -> str:
    """Fig. 3 style: for each *physical* node, the logical label it hosts
    after reconfiguration (``X`` marks faults, ``-`` unused spares)."""
    inv = {int(p): x for x, p in enumerate(phi)}
    fset = {int(v) for v in faults}
    lines = []
    for p in range(total_nodes):
        if p in fset:
            body = "X  (faulty)"
        elif p in inv:
            x = inv[p]
            body = f"hosts {x} = {format_label(x, m, h)}"
        else:
            body = "-  (idle spare)"
        lines.append(f"physical {p:>3}: {body}")
    return "\n".join(lines)


def bus_listing(bg: BusHypergraph) -> str:
    """Fig. 4 style: one line per bus, owner first, then the block."""
    lines = []
    owners = bg.owners
    for b in range(bg.bus_count):
        mem = ", ".join(str(int(v)) for v in bg.bus_members(b))
        own = f" (owner {int(owners[b])})" if owners is not None else ""
        lines.append(f"bus {b:>3}{own}: {{{mem}}}")
    return "\n".join(lines)
