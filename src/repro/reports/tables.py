"""Aggregation and rendering for report tables.

The reducers here pool Monte-Carlo replicas and seed repetitions the
only way that is exact: by merging the cells' sufficient statistics
(:class:`~repro.simulator.shard_driver.ShardStats` histograms and
counters) *before* computing any ratio or percentile.  Delivery gets a
Wilson score interval (:func:`~repro.simulator.metrics.wilson_interval`)
over the pooled trials, and latency percentiles come straight off the
merged histogram (:func:`~repro.simulator.metrics.hist_percentile`) —
no multi-million-packet sample is ever materialized.

Rendering is CSV + GitHub-flavored markdown, both derived from the same
:class:`~repro.reports.plan.ReportTable` rows so the two artifacts can
never disagree.
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from repro.errors import ParameterError
from repro.simulator.metrics import hist_percentile, wilson_interval
from repro.simulator.shard_driver import ExperimentResult, ShardStats

__all__ = [
    "delivery_columns",
    "pooled_delivery",
    "render_csv",
    "render_markdown",
]

#: The measurement columns :func:`pooled_delivery` produces, in table
#: order — report definitions append these to their coordinate columns.
delivery_columns = (
    "offered",
    "delivered",
    "delivery",
    "ci_lo",
    "ci_hi",
    "mean_latency",
    "p50_latency",
    "p95_latency",
    "p99_latency",
    "mean_hops",
    "lost_to_faults",
    "unreachable_pairs",
)


def pooled_delivery(results: Sequence[ExperimentResult]) -> dict:
    """Reduce closed-loop results (replica/seed repetitions of one
    surface point) to the delivery + latency measurement columns.

    Offered traffic counts everything the workload asked for: injected
    packets plus the pairs a controller refused to admit (the detour
    baseline's unreachable pairs) — a machine cannot improve its
    delivery rate by refusing traffic.
    """
    results = list(results)
    if not results:
        raise ParameterError("pooled_delivery needs at least one result")
    for r in results:
        if not isinstance(r.stats, ShardStats):
            raise ParameterError(
                "pooled_delivery reduces closed-loop cells only"
            )
    merged = results[0].merged_with(results[1:])
    stats = merged.stats
    offered = stats.injected + merged.unreachable_pairs
    delivered = stats.delivered
    lo, hi = wilson_interval(delivered, offered)
    if delivered:
        mean_latency = (
            int((stats.lat_values * stats.lat_counts).sum()) / delivered
        )
        mean_hops = (
            int((stats.hop_values * stats.hop_counts).sum()) / delivered
        )
    else:
        mean_latency = mean_hops = 0.0
    return {
        "offered": int(offered),
        "delivered": int(delivered),
        "delivery": round(delivered / offered, 6) if offered else 1.0,
        "ci_lo": round(lo, 6),
        "ci_hi": round(hi, 6),
        "mean_latency": round(mean_latency, 4),
        "p50_latency": round(
            hist_percentile(stats.lat_values, stats.lat_counts, 50), 4
        ),
        "p95_latency": round(
            hist_percentile(stats.lat_values, stats.lat_counts, 95), 4
        ),
        "p99_latency": round(
            hist_percentile(stats.lat_values, stats.lat_counts, 99), 4
        ),
        "mean_hops": round(mean_hops, 4),
        "lost_to_faults": int(merged.lost_to_faults),
        "unreachable_pairs": int(merged.unreachable_pairs),
    }


def render_csv(table) -> str:
    """The table as CSV: the declared columns plus a final ``cells``
    provenance column (cell ids joined with ``;``)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(list(table.columns) + ["cells"])
    for row in table.rows:
        writer.writerow(
            [row[c] for c in table.columns] + [";".join(row["cells"])]
        )
    return buf.getvalue()


def render_markdown(table) -> str:
    """The table as GitHub-flavored markdown with its caption; the
    provenance column links each row to its raw cell artifacts."""
    lines = [f"### {table.name}", "", table.caption, ""]
    header = list(table.columns) + ["cells"]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join(" --- " for _ in header) + "|")
    for row in table.rows:
        cells = ", ".join(
            f"[{cid}](cells/{cid}.json)" for cid in row["cells"]
        )
        values = [str(row[c]) for c in table.columns] + [cells]
        lines.append("| " + " | ".join(values) + " |")
    lines.append("")
    return "\n".join(lines)
