"""The registered reports.

``dependability-surface``
    The headline surface of the dependability literature (Meng & Yang's
    random-node-fault model, Elderhalli et al.'s dynamic analysis):
    delivery rate and latency percentiles versus i.i.d. node survival
    probability x machine size x offered load, with the paper's
    reconfiguration controller side-by-side against the spare-less
    detour baseline (``route_mode="table"``).  Every surface point pools
    Monte-Carlo fault replicas across seeded traffic repetitions and
    carries a Wilson interval on delivery.

``paper-tables``
    The source paper's fixed-fault claims: on ``B^k_{2,h}`` with up to
    ``k`` worst-case node faults, reconfiguration delivers everything
    with *zero dilation* — the faulted rows reproduce the fault-free
    latency and hop numbers exactly.

Both builders take ``quick=``: QUICK keeps CI and the tier-1 tests in
seconds, FULL is the million-packet configuration the published surface
runs at.  All axes are literals here — a report's identity is its
parameterization, so the grids double as the manifest's provenance.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.experiments import ExperimentGrid
from repro.reports.plan import REPORTS, ReportCell, ReportPlan, ReportTable
from repro.reports.tables import delivery_columns, pooled_delivery

__all__ = ["dependability_surface", "paper_tables"]

#: Spare budgets sized so an i.i.d. draw overflowing the spares is
#: astronomically unlikely (>= 5 sigma above the mean fault count at the
#: strongest intensity) — a probabilistic replica that demands more than
#: ``k`` spares would fail the whole report at realization time.
_SURFACE_SIZES_QUICK = ((2, 5, 12), (2, 6, 16))
_SURFACE_SIZES_FULL = ((2, 5, 12), (2, 6, 20))


def _surface_grids(quick: bool) -> dict:
    """The two arms of the surface as grids sharing every axis except
    the controller: the paper's reconfiguration vs the detour baseline
    on its vectorized per-epoch route tables."""
    if quick:
        sizes = _SURFACE_SIZES_QUICK
        ps = (1.0, 0.95, 0.9)
        loads = (1200,)
        replicas, seeds = 4, (0, 1)
    else:
        sizes = _SURFACE_SIZES_FULL
        ps = (1.0, 0.98, 0.95, 0.9)
        loads = (250_000, 1_000_000)
        replicas, seeds = 8, (0, 1, 2, 3)
    shared = dict(
        mhk=sizes,
        patterns=("uniform",),
        loads=loads,
        fault_models=tuple({"name": "iid", "p": p} for p in ps),
        replicas=replicas,
        seeds=seeds,
        engine="batch",
    )
    return {
        "reconfig": ExperimentGrid(
            controller="reconfig", route_mode="bfs", **shared
        ),
        "detour": ExperimentGrid(
            controller="detour", route_mode="table", **shared
        ),
    }


def _grid_cells(group: str, grid: ExperimentGrid) -> list[ReportCell]:
    """One :class:`ReportCell` per grid cell, coordinates matching the
    grid's documented expansion order (seeds fastest, sizes slowest)."""
    if grid.fault_models:
        fault_axis = [
            ("p", model["p"]) for model in grid.fault_models
        ]
    else:
        fault_axis = [("f", len(fs)) for fs in grid.fault_sets]
    cells = []
    for spec, ((m, h, k), pattern, load, fault, seed) in zip(
        grid.expand(),
        itertools.product(
            grid.mhk, grid.patterns, grid.loads, fault_axis, grid.seeds
        ),
    ):
        coords = {
            "m": m, "h": h, "k": k, fault[0]: fault[1],
            "load": load, "seed": seed,
        }
        cells.append(ReportCell.make(group, coords, spec))
    return cells


def _pooled_rows(plan, results, group: str):
    """Pool each surface point's seed repetitions: cells that share
    every coordinate except ``seed`` reduce to one row."""
    points: dict[tuple, list] = {}
    for cell in plan.cells:
        if cell.group != group:
            continue
        key = tuple(
            (k, v) for k, v in sorted(cell.coords.items()) if k != "seed"
        )
        points.setdefault(key, []).append(cell)
    rows = []
    for key, cells in sorted(points.items()):
        row = dict(key)
        row.update(
            pooled_delivery([results[c.cell_id] for c in cells])
        )
        row["cells"] = [c.cell_id for c in cells]
        rows.append(row)
    return rows


def _aggregate_surface(plan, results):
    coord_cols = ("h", "k", "load", "m", "p")
    tables = []
    rows_by_group = {}
    for group in ("reconfig", "detour"):
        rows = _pooled_rows(plan, results, group)
        rows_by_group[group] = rows
        tables.append(
            ReportTable(
                name=f"surface-{group}",
                caption=(
                    f"Delivery and latency vs i.i.d. node survival "
                    f"probability p, machine size and offered load — "
                    f"{group} controller, seed repetitions pooled, "
                    f"Wilson 95% interval on delivery."
                ),
                columns=coord_cols + delivery_columns,
                rows=rows,
            )
        )

    # the head-to-head the paper's claim rides on: at every surface
    # point, reconfiguration must deliver at least what detour does
    compare_rows = []
    detour_at = {
        tuple(row[c] for c in coord_cols): row
        for row in rows_by_group["detour"]
    }
    for row in rows_by_group["reconfig"]:
        point = tuple(row[c] for c in coord_cols)
        other = detour_at[point]
        compare_rows.append(
            {
                **{c: row[c] for c in coord_cols},
                "reconfig_delivery": row["delivery"],
                "reconfig_ci_lo": row["ci_lo"],
                "reconfig_ci_hi": row["ci_hi"],
                "detour_delivery": other["delivery"],
                "detour_ci_lo": other["ci_lo"],
                "detour_ci_hi": other["ci_hi"],
                "delta": round(row["delivery"] - other["delivery"], 6),
                "ci_disjoint": row["ci_lo"] > other["ci_hi"],
                "cells": row["cells"] + other["cells"],
            }
        )
    tables.append(
        ReportTable(
            name="surface-comparison",
            caption=(
                "Reconfiguration vs detour baseline at every surface "
                "point: delivery-rate delta and whether the Wilson "
                "intervals are disjoint (reconfig lower bound above the "
                "detour upper bound)."
            ),
            columns=coord_cols + (
                "reconfig_delivery", "reconfig_ci_lo", "reconfig_ci_hi",
                "detour_delivery", "detour_ci_lo", "detour_ci_hi",
                "delta", "ci_disjoint",
            ),
            rows=compare_rows,
        )
    )

    offered = sum(row["offered"] for row in rows_by_group["reconfig"])
    offered += sum(row["offered"] for row in rows_by_group["detour"])
    summary = (
        f"Dependability surface over {len(plan.cells)} cells "
        f"({offered} offered packets pooled into "
        f"{len(compare_rows)} surface points per arm).  Faults are "
        f"i.i.d. node failures at cycle 0 (survival probability p); "
        f"reconfiguration remaps onto spares, the detour baseline "
        f"reroutes around dead nodes on per-epoch route tables."
    )
    return tables, summary


@REPORTS.register("dependability-surface")
def dependability_surface(*, quick: bool = False) -> ReportPlan:
    """Delivery + latency vs fault intensity x size x load, both arms."""
    grids = _surface_grids(quick)
    cells = []
    for group, grid in grids.items():
        cells.extend(_grid_cells(group, grid))
    return ReportPlan(
        name="dependability-surface",
        title="Dependability surface: reconfiguration vs detour under "
              "i.i.d. node faults",
        quick=quick,
        grids=grids,
        cells=cells,
        aggregate=_aggregate_surface,
    )


def _paper_fault_sets(h: int) -> tuple:
    """Fault sets of size 0, 1, 2 on ``B^2_{2,h}``: the faulted nodes
    are a fixed seeded draw (``rng([1992, h])``), so the tables name the
    same nodes forever."""
    n = 2 ** h
    rng = np.random.default_rng([1992, h])
    nodes = rng.choice(n, size=2, replace=False)
    a, b = int(nodes[0]), int(nodes[1])
    return ((), ((0, a),), ((0, a), (0, b)))


def _aggregate_paper(plan, results):
    coord_cols = ("f", "h", "k", "load", "m")
    rows = []
    for group in sorted(plan.grids):
        rows.extend(_pooled_rows(plan, results, group))
    table = ReportTable(
        name="fixed-fault-delivery",
        caption=(
            "Delivery under f worst-case node faults on B^k_{2,h} with "
            "reconfiguration (f <= k): every row delivers 100% and the "
            "faulted rows reproduce the fault-free hop counts — the "
            "paper's zero-dilation claim."
        ),
        columns=coord_cols + delivery_columns,
        rows=rows,
    )
    summary = (
        f"Source-paper fixed-fault tables over {len(plan.cells)} cells: "
        f"f in {{0, 1, 2}} seeded worst-case node faults per machine, "
        f"reconfiguration controller, seed repetitions pooled."
    )
    return [table], summary


@REPORTS.register("paper-tables")
def paper_tables(*, quick: bool = False) -> ReportPlan:
    """The source paper's fixed-k fault tables (delivery, zero dilation)."""
    if quick:
        loads, seeds = (400,), (0, 1)
    else:
        loads, seeds = (1000,), (0, 1, 2)
    grids = {}
    cells = []
    for h in (5, 6):
        grid = ExperimentGrid(
            mhk=((2, h, 2),),
            patterns=("uniform",),
            loads=loads,
            fault_sets=_paper_fault_sets(h),
            seeds=seeds,
            controller="reconfig",
            engine="batch",
        )
        group = f"fixed-h{h}"
        grids[group] = grid
        cells.extend(_grid_cells(group, grid))
    return ReportPlan(
        name="paper-tables",
        title="Fixed-fault tables: B^k_{2,h} under up to k node faults",
        quick=quick,
        grids=grids,
        cells=cells,
        aggregate=_aggregate_paper,
    )
