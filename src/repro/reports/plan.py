"""The report plan: what to run, how to aggregate, what to emit.

A *report* is a named, parameterized recipe that turns experiment grids
into publishable tables with provenance.  Entries live in the
:data:`REPORTS` registry (the same decorator pattern as
:data:`~repro.simulator.engines.ENGINES` and
:data:`~repro.simulator.faults.FAULT_MODELS`): a builder registered
under the report's name receives ``quick=`` and returns a
:class:`ReportPlan` — the full list of :class:`ReportCell`\\ s to
execute, the grids they came from, and the aggregation that reduces the
per-cell results into :class:`ReportTable`\\ s plus a markdown summary.

:func:`build_report` is the one executor: it expands the plan, sweeps
every cell through :func:`~repro.simulator.shard_driver.run_grid` on
one warm pool, and returns a :class:`ReportRun` ready for
:func:`~repro.reports.bundle.write_report_bundle`.

Everything here is deterministic by construction: cell ids derive from
the spec content hash (:meth:`~repro.experiments.ExperimentSpec.digest`),
cells execute in plan order, and aggregation is a pure function of the
results — so a regenerated report is byte-identical to the first build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ParameterError
from repro.experiments import ExperimentGrid, ExperimentResult, ExperimentSpec
from repro.registry import Registry
from repro.simulator.shard_driver import run_grid

__all__ = [
    "REPORTS",
    "ReportCell",
    "ReportPlan",
    "ReportRun",
    "ReportTable",
    "build_report",
]

#: The report registry: name -> builder ``(quick: bool) -> ReportPlan``.
#: Register with ``@REPORTS.register("my-report")``; the CLI
#: (``repro report <name>``) and CI resolve names through this table.
REPORTS = Registry("report")


@dataclass(frozen=True)
class ReportCell:
    """One executable cell of a report: a concrete spec plus the
    human-readable coordinates that place it in the report's surface.

    ``cell_id`` doubles as the bundle filename stem; it ends in the
    spec's content-hash prefix, so two cells with identical coordinates
    but different specs cannot collide, and the filename is a pure
    function of the spec (no counters, no wall clock).
    """

    cell_id: str
    group: str          # which arm/grid of the report this cell belongs to
    coords: dict        # JSON-friendly axis values (size, p, load, seed, ...)
    spec: ExperimentSpec

    @classmethod
    def make(
        cls, group: str, coords: Mapping, spec: ExperimentSpec
    ) -> "ReportCell":
        """Derive the canonical cell id from group + coords + spec hash."""
        parts = [group]
        for key, value in coords.items():
            parts.append(f"{key}{value}")
        parts.append(spec.digest()[:8])
        cell_id = "-".join(p.replace(" ", "").replace("/", "_") for p in parts)
        return cls(
            cell_id=cell_id, group=group, coords=dict(coords), spec=spec
        )


@dataclass(frozen=True)
class ReportTable:
    """One aggregated table: named columns, dict rows, provenance.

    Every row carries a ``"cells"`` key — the ``cell_id`` list of the
    raw artifacts its numbers were reduced from — so each published
    number links back to what produced it.
    """

    name: str
    caption: str
    columns: tuple
    rows: tuple

    def __post_init__(self):
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "rows", tuple(self.rows))
        for row in self.rows:
            missing = [c for c in self.columns if c not in row]
            if missing or "cells" not in row:
                raise ParameterError(
                    f"table {self.name!r} row is missing columns "
                    f"{missing + (['cells'] if 'cells' not in row else [])}"
                )


@dataclass(frozen=True)
class ReportPlan:
    """A fully-expanded report: cells to execute (in order), the grids
    they expand (kept for the manifest), and the aggregation function
    ``(plan, {cell_id: ExperimentResult}) -> (tables, summary_md)``."""

    name: str
    title: str
    quick: bool
    grids: dict          # group -> ExperimentGrid (manifest provenance)
    cells: tuple         # ReportCell, execution order
    aggregate: Callable

    def __post_init__(self):
        object.__setattr__(self, "cells", tuple(self.cells))
        seen: set[str] = set()
        for cell in self.cells:
            if cell.cell_id in seen:
                raise ParameterError(
                    f"report {self.name!r} has duplicate cell id "
                    f"{cell.cell_id!r}"
                )
            seen.add(cell.cell_id)
        for group, grid in self.grids.items():
            if not isinstance(grid, ExperimentGrid):
                raise ParameterError(
                    f"report {self.name!r} grid {group!r} must be an "
                    f"ExperimentGrid"
                )


@dataclass(frozen=True)
class ReportRun:
    """A built report: the plan, every cell's result, and the
    aggregated outputs — everything the bundle writer needs."""

    plan: ReportPlan
    results: dict        # cell_id -> ExperimentResult
    tables: tuple        # ReportTable
    summary: str         # markdown
    workers: int
    seconds: float       # wall clock (never written into the bundle)


def build_report(
    name: str,
    *,
    quick: bool = False,
    pool=None,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> ReportRun:
    """Build a registered report end-to-end: resolve the plan, sweep
    every cell across one warm pool, aggregate into tables.

    ``pool`` borrows a caller-owned
    :class:`~repro.simulator.pool.WorkerPool`; otherwise ``workers``/
    ``chunk_size`` size a sweep-local one (``workers=0`` runs inline —
    the reference path the determinism tests pin against).
    """
    builder = REPORTS.get(name)
    plan = builder(quick=quick)
    specs = [cell.spec for cell in plan.cells]
    grid_result = run_grid(
        specs, pool=pool, workers=workers, chunk_size=chunk_size
    )
    results: dict[str, ExperimentResult] = {
        cell.cell_id: res
        for cell, res in zip(plan.cells, grid_result.results)
    }
    tables, summary = plan.aggregate(plan, results)
    return ReportRun(
        plan=plan,
        results=results,
        tables=tuple(tables),
        summary=summary,
        workers=grid_result.workers,
        seconds=grid_result.seconds,
    )
