"""Reports: declarative experiment-to-table pipelines with provenance.

The package turns :class:`~repro.experiments.ExperimentGrid` sweeps into
publishable dependability tables and a byte-identical reproducibility
bundle:

* :data:`REPORTS` — the decorator registry mapping report names to
  :class:`ReportPlan` builders (``repro report <name>`` resolves here);
* :func:`build_report` — execute a plan's cells on one warm worker pool
  and aggregate them into tables;
* :func:`write_report_bundle` / :func:`write_run_bundle` — emit the
  self-describing bundle (manifest + raw cells + tables + summary);
* the shipped reports — ``dependability-surface`` and ``paper-tables``
  (:mod:`repro.reports.definitions`).

See docs/reports.md for the bundle layout and the recipe for
registering a new report.
"""

from repro.reports.bundle import (
    BundleWriter,
    canonical_json,
    cell_payload,
    registry_versions,
    write_report_bundle,
    write_run_bundle,
)
from repro.reports.plan import (
    REPORTS,
    ReportCell,
    ReportPlan,
    ReportRun,
    ReportTable,
    build_report,
)
from repro.reports import definitions  # noqa: F401  (registers the reports)
from repro.reports.tables import (
    delivery_columns,
    pooled_delivery,
    render_csv,
    render_markdown,
)

__all__ = [
    "REPORTS",
    "BundleWriter",
    "ReportCell",
    "ReportPlan",
    "ReportRun",
    "ReportTable",
    "build_report",
    "canonical_json",
    "cell_payload",
    "delivery_columns",
    "pooled_delivery",
    "registry_versions",
    "render_csv",
    "render_markdown",
    "write_report_bundle",
    "write_run_bundle",
]
