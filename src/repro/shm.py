"""Zero-copy shared-memory plane for NumPy array bundles.

Worker processes of the persistent :class:`~repro.simulator.pool.WorkerPool`
repeatedly receive the *same* large read-only arrays — a
:class:`~repro.graphs.static_graph.StaticGraph`'s CSR arrays, a compiled
:class:`~repro.routing.tables.RouteTable` — and pickling those per task
(or re-faulting fork-COW pages per touch) is pure overhead.  This module
packs a named bundle of arrays into **one**
:mod:`multiprocessing.shared_memory` segment that any process can attach
to and view without copying a byte:

* :func:`export_arrays` — create a segment, copy the arrays in once,
  return a :class:`ShmBlock` handle (the *owner*: only it unlinks).
* :func:`attach_arrays` — map an existing segment by name and return
  read-only zero-copy NumPy views plus the keep-alive handle.
* :func:`shm_available` — probed once; ``False`` (no ``/dev/shm``,
  platform without POSIX shared memory) selects the pickle fallback in
  the callers.

Segment layout: an 8-byte little-endian length prefix, a pickled
manifest ``[(name, dtype, shape, offset), ...]``, then the raw array
bytes at 16-byte-aligned offsets.

Lifecycle contract
------------------
The *creator* owns the segment: it must call :meth:`ShmBlock.unlink`
(idempotent) when no process needs the data anymore — segments outlive
processes, so a leaked name holds kernel memory until reboot.
Attachers only ever :meth:`ShmBlock.close` their mapping; the attach
path avoids creating a resource-tracker registration of its own
(``track=False`` on 3.13+; see :func:`_attach_untracked` for why the
3.10–3.12 duplicate registration is harmless for multiprocessing-started
workers).
"""

from __future__ import annotations

import pickle
import secrets
import struct
import weakref
from typing import Mapping

import numpy as np

from repro.errors import ReproError

__all__ = [
    "ShmBlock", "export_arrays", "attach_arrays", "shm_available",
    "unlink_owned",
]

_ALIGN = 16
_LEN = struct.Struct("<q")  # manifest length prefix

_available: bool | None = None

#: Segments whose mapping could not be released because NumPy views
#: still alias it.  Holding the handle keeps ``SharedMemory.__del__``
#: from re-raising the BufferError as an unraisable warning at GC time;
#: the mapping itself is reclaimed at process exit either way.
_unreleased: list = []

#: Every live owner handle created by this process, weakly held.  The
#: interrupt path (:func:`unlink_owned`) walks this instead of waiting
#: for GC finalizers: a Ctrl-C that lands mid-``map`` unwinds the stack
#: past whoever was holding the block, and a leaked ``/dev/shm`` segment
#: holds kernel memory until reboot.
_OWNED_BLOCKS: "weakref.WeakSet" = weakref.WeakSet()


def unlink_owned() -> int:
    """Unlink every shared-memory segment this process still owns.

    Returns the number of segments actually removed.  Safe to call from
    signal/interrupt handlers and idempotent — :meth:`ShmBlock.unlink`
    is a no-op on closed or non-owner handles.  Normal code should keep
    unlinking through the owning handle; this is the emergency sweep for
    teardown paths that cannot reach the owners anymore.
    """
    n = 0
    for block in list(_OWNED_BLOCKS):
        if block._shm is not None:
            block.unlink()
            n += 1
    return n


class ShmError(ReproError):
    """A shared-memory export/attach failed (missing segment, malformed
    manifest, or platform without POSIX shared memory)."""


def shm_available() -> bool:
    """Whether POSIX shared memory works here (probed once, cached).

    The probe actually creates and unlinks a tiny segment, so a mounted
    but unwritable ``/dev/shm`` (locked-down containers) reports
    ``False`` and callers fall back to pickled payloads.
    """
    global _available
    if _available is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(
                create=True, size=_ALIGN, name=f"repro_probe_{secrets.token_hex(4)}"
            )
            seg.close()
            seg.unlink()
            _available = True
        except Exception:
            _available = False
    return _available


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _attach_untracked(name: str):
    """Attach to an existing segment without adding a resource-tracker
    registration of our own (``track=False``, Python 3.13+).

    On 3.10–3.12 attaching always registers, but that is harmless here:
    every attacher is a ``multiprocessing`` child sharing the *parent's*
    tracker (both fork and spawn pass the tracker fd down), and the
    tracker's registry is a set — the attach-side duplicate collapses
    into the owner's create-time entry, and the owner's ``unlink()``
    clears it exactly once.  Do NOT "fix" this with
    ``resource_tracker.unregister`` on the attach side: that unbalances
    the shared set and the owner's unlink then logs KeyError noise from
    the tracker process.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class ShmBlock:
    """Handle on one shared-memory segment holding an array bundle.

    The creating process gets ``owner=True`` and is responsible for
    :meth:`unlink`; attached handles only :meth:`close` their mapping.
    Both operations are idempotent, and a garbage-collected owner
    unlinks as a last resort (explicit lifecycle is still the contract —
    finalizers give no timing guarantees).
    """

    __slots__ = ("_shm", "name", "owner", "__weakref__")

    def __init__(self, shm, *, owner: bool):
        self._shm = shm
        self.name = shm.name
        self.owner = owner
        if owner:
            _OWNED_BLOCKS.add(self)

    @property
    def buf(self):  # memoryview of the whole segment
        if self._shm is None:
            raise ShmError(f"shared-memory block {self.name} is closed")
        return self._shm.buf

    def close(self) -> None:
        """Drop this process's mapping (views into it become invalid).

        On the owning handle this is full teardown: an owner dropping
        its mapping without unlinking can only leak the segment until
        process exit, so ``close()`` delegates to :meth:`unlink`.
        """
        if self.owner:
            self.unlink()
            return
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                # live NumPy views still hold exported pointers; park the
                # handle so the mapping survives them (and its __del__
                # never re-raises) — reclaimed at process exit
                _unreleased.append(self._shm)
            self._shm = None

    def unlink(self) -> None:
        """Remove the segment system-wide (owner only; idempotent)."""
        if not self.owner:
            return
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views outlive the owner
            _unreleased.append(shm)
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "ShmBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self.owner else self.close()

    def __del__(self):  # pragma: no cover - GC backstop, timing varies
        try:
            self.unlink() if self.owner else self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._shm is None else "open"
        return f"ShmBlock({self.name!r}, owner={self.owner}, {state})"


def export_arrays(arrays: Mapping[str, np.ndarray], *, name: str | None = None) -> ShmBlock:
    """Copy an array bundle into one fresh shared-memory segment.

    Returns the owning :class:`ShmBlock`; its :attr:`~ShmBlock.name` is
    what :func:`attach_arrays` (in any process) takes.  Array order,
    dtypes and shapes round-trip exactly.  Raises :class:`ShmError` when
    shared memory is unavailable — callers gate on :func:`shm_available`
    to pick the pickle fallback instead.
    """
    if not shm_available():
        raise ShmError(
            "POSIX shared memory is unavailable on this platform; use the "
            "pickle payload path (see shm_available())"
        )
    from multiprocessing import shared_memory

    items = [(k, np.ascontiguousarray(v)) for k, v in arrays.items()]
    manifest = []
    offset = 0
    for k, v in items:
        offset = _align(offset)
        manifest.append((k, v.dtype.str, v.shape, offset))
        offset += v.nbytes
    meta = pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
    data_start = _align(_LEN.size + len(meta))
    size = max(data_start + offset, _ALIGN)
    seg = shared_memory.SharedMemory(
        create=True, size=size,
        name=name or f"repro_{secrets.token_hex(8)}",
    )
    buf = seg.buf
    buf[: _LEN.size] = _LEN.pack(len(meta))
    buf[_LEN.size: _LEN.size + len(meta)] = meta
    for (k, dtype, shape, rel), (_, v) in zip(manifest, items):
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        dst = np.frombuffer(buf, dtype=dtype, count=count,
                            offset=data_start + rel).reshape(shape)
        dst[...] = v
        del dst  # release the exported buffer before any close()
    return ShmBlock(seg, owner=True)


def attach_arrays(name: str) -> tuple[dict[str, np.ndarray], ShmBlock]:
    """Map the segment ``name`` and view its arrays without copying.

    Returns ``(arrays, block)``: read-only views plus the keep-alive
    handle — the views alias the mapping, so hold the block as long as
    the arrays are in use and :meth:`ShmBlock.close` it after.  Raises
    :class:`ShmError` when the segment does not exist (unlinked early,
    or a name typo).
    """
    try:
        seg = _attach_untracked(name)
    except FileNotFoundError:
        raise ShmError(
            f"shared-memory segment {name!r} does not exist (already "
            f"unlinked, or never exported)"
        ) from None
    block = ShmBlock(seg, owner=False)
    buf = seg.buf
    (meta_len,) = _LEN.unpack(bytes(buf[: _LEN.size]))
    if not 0 < meta_len <= len(buf) - _LEN.size:
        block.close()
        raise ShmError(f"segment {name!r} has a malformed manifest")
    manifest = pickle.loads(bytes(buf[_LEN.size: _LEN.size + meta_len]))
    data_start = _align(_LEN.size + meta_len)
    out: dict[str, np.ndarray] = {}
    for k, dtype, shape, rel in manifest:
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        view = np.frombuffer(buf, dtype=dtype, count=count,
                             offset=data_start + rel).reshape(shape)
        view.flags.writeable = False
        out[k] = view
    return out, block
