"""Normal algorithms on the shuffle-exchange network.

The shuffle-exchange runs Ascend/Descend with a factor-2 slowdown: where
the de Bruijn graph's edges combine "shuffle and exchange" in one hop,
SE_h spends one *shuffle* round moving every item along its cycle edge
and one *exchange* round combining partners across exchange edges.

Placement invariant: after ``t`` net shuffle rounds, logical item ``b``
sits at SE node ``rot^t(b)``.  Items differing in logical bit ``j`` are
exchange partners (physical bit 0) exactly when ``(j + t) mod h == 0``;
pair rounds leave the placement unchanged, shuffle rounds advance it.

The same class runs on the *fault-tolerant* shuffle-exchange machine:
pass ``node_map = φ[ψ]`` (reconfiguration remap composed with the SE→dB
embedding) and every recorded message is an edge of ``B^k_{2,h}`` between
healthy nodes — which is the §I claim for shuffle-exchange targets, made
executable (see :class:`FaultTolerantSEMachine`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.ascend_descend import EmulationTrace, PairOp
from repro.core.debruijn import debruijn
from repro.core.fault_tolerant import ft_debruijn
from repro.core.labels import rotate_left, validate_h
from repro.core.reconfiguration import Reconfigurator
from repro.core.shuffle_exchange import psi_map, shuffle_exchange
from repro.errors import ParameterError, SimulationError
from repro.graphs.static_graph import StaticGraph

__all__ = ["ShuffleExchangeEmulation", "FaultTolerantSEMachine"]


class ShuffleExchangeEmulation:
    """Run pair-op schedules on SE_h (optionally through a node map).

    API mirrors :class:`~repro.algorithms.ascend_descend.DeBruijnEmulation`:
    ``run(values, schedule, op) -> (values, trace)``.
    """

    def __init__(self, h: int, node_map: np.ndarray | None = None):
        self.h = validate_h(h)
        self.n = 1 << h
        if node_map is None:
            node_map = np.arange(self.n, dtype=np.int64)
        self.node_map = np.asarray(node_map, dtype=np.int64)
        if self.node_map.shape != (self.n,):
            raise ParameterError(
                f"node_map must have length {self.n}, got {self.node_map.shape}"
            )

    def _positions(self, t: int) -> np.ndarray:
        ids = np.arange(self.n, dtype=np.int64)
        return self.node_map[rotate_left(ids, 2, self.h, steps=t % self.h)]

    def _shuffle_round(self, t: int, forward: bool) -> list[tuple[int, int]]:
        """All items move along shuffle (forward) or unshuffle edges."""
        src = self._positions(t)
        dst = self._positions(t + 1 if forward else t - 1)
        return [(int(a), int(b)) for a, b in zip(src, dst) if a != b]

    def _exchange_round(self, t: int) -> list[tuple[int, int]]:
        """Partners (physical bit 0) swap values over exchange edges."""
        ids = np.arange(self.n, dtype=np.int64)
        u = rotate_left(ids, 2, self.h, steps=t % self.h)
        msgs = {
            (int(a), int(b))
            for a, b in zip(self.node_map[u], self.node_map[u ^ 1])
            if a != b
        }
        return sorted(msgs)

    def run(
        self, values: Sequence, schedule: Sequence[int], op: PairOp
    ) -> tuple[list, EmulationTrace]:
        """Execute ``schedule``; results returned in logical index order."""
        if len(values) != self.n:
            raise ParameterError(f"need exactly {self.n} values")
        vals = list(values)
        trace = EmulationTrace()
        t = 0
        for bit in schedule:
            if not 0 <= bit < self.h:
                raise ParameterError(f"bit {bit} out of range for h={self.h}")
            needed = (-bit) % self.h
            delta = (needed - t) % self.h
            if delta <= self.h - delta:
                for _ in range(delta):
                    trace.rounds.append(self._shuffle_round(t, forward=True))
                    t += 1
            else:
                for _ in range(self.h - delta):
                    trace.rounds.append(self._shuffle_round(t, forward=False))
                    t -= 1
            if (bit + t) % self.h != 0:
                raise SimulationError("SE alignment invariant violated")
            trace.rounds.append(self._exchange_round(t))
            vals = [op(bit, i, vals[i], vals[i ^ (1 << bit)]) for i in range(self.n)]
        while t % self.h != 0:
            delta = (-t) % self.h
            if delta <= self.h - delta:
                trace.rounds.append(self._shuffle_round(t, forward=True))
                t += 1
            else:
                trace.rounds.append(self._shuffle_round(t, forward=False))
                t -= 1
        return vals, trace


class FaultTolerantSEMachine:
    """A logical SE_h machine on a ``B^k_{2,h}`` substrate.

    Logical SE node ``v`` is hosted on physical node ``φ(ψ(v))`` — the
    paper's §I composition.  :meth:`emulation` returns a runner whose
    traces verify against the healthy fault-tolerant graph.
    """

    def __init__(self, h: int, k: int):
        self.h, self.k = int(h), int(k)
        self.n = 1 << h
        self.ft = ft_debruijn(2, h, k)
        self.se = shuffle_exchange(h)
        self.db = debruijn(2, h)
        self.psi = psi_map(h)
        self.rec = Reconfigurator(self.ft.node_count, self.n)

    def fail_node(self, physical: int) -> None:
        self.rec.fail_node(physical)

    def repair_node(self, physical: int) -> None:
        self.rec.repair_node(physical)

    @property
    def faults(self) -> tuple[int, ...]:
        return self.rec.faults

    def node_map(self) -> np.ndarray:
        """Current physical host of each logical SE node: ``φ[ψ]``."""
        return self.rec.phi()[self.psi]

    def healthy_graph(self) -> StaticGraph:
        """``B^k_{2,h}`` with faulty nodes isolated."""
        if not self.rec.faults:
            return self.ft
        sub, kept = self.ft.without_nodes(list(self.rec.faults))
        e = sub.edges()
        return StaticGraph(self.ft.node_count, kept[e] if e.shape[0] else ())

    def emulation(self) -> ShuffleExchangeEmulation:
        return ShuffleExchangeEmulation(self.h, node_map=self.node_map())

    def run(self, values, schedule, op):
        """Run and verify: every SE round must ride healthy FT edges."""
        emu = self.emulation()
        vals, trace = emu.run(values, schedule, op)
        if not trace.verify_against(self.healthy_graph()):
            raise SimulationError(
                "SE emulation used a faulty or missing physical edge"
            )
        return vals, trace
