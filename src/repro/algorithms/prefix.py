"""Reductions, broadcasts and parallel prefix as Ascend schedules.

These are the bread-and-butter collectives of normal algorithms: one pass
over the bits with a constant-size state per node.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.algorithms.ascend_descend import (
    DeBruijnEmulation,
    EmulationTrace,
    HypercubeRunner,
    ascend_schedule,
)
from repro.core.labels import validate_h
from repro.errors import ParameterError

__all__ = ["allreduce", "exclusive_prefix", "broadcast"]


def _engine(h: int, backend: str, node_map):
    if backend == "hypercube":
        return HypercubeRunner(h).run
    if backend == "debruijn":
        return DeBruijnEmulation(h, node_map=node_map).run
    if backend in ("shuffle-exchange", "se"):
        from repro.algorithms.se_emulation import ShuffleExchangeEmulation

        return ShuffleExchangeEmulation(h, node_map=node_map).run
    raise ParameterError(f"unknown backend {backend!r}")


def _size_to_h(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise ParameterError(f"collectives need a power-of-two size, got {n}")
    return validate_h(n.bit_length() - 1, minimum=1)


def allreduce(
    values: Sequence,
    combine: Callable = lambda a, b: a + b,
    *,
    backend: str = "debruijn",
    node_map=None,
) -> tuple[list, EmulationTrace]:
    """Every node ends with ``combine`` folded over all inputs.

    One Ascend pass: at bit ``j`` each node folds its partner's partial
    result (associative+commutative ``combine`` required).
    """
    h = _size_to_h(len(values))

    def op(bit, i, own, partner):
        return combine(own, partner)

    return _engine(h, backend, node_map)(list(values), ascend_schedule(h), op)


def exclusive_prefix(
    values: Sequence,
    combine: Callable = lambda a, b: a + b,
    zero=0,
    *,
    backend: str = "debruijn",
    node_map=None,
) -> tuple[list, EmulationTrace]:
    """Exclusive scan: output ``i`` is ``combine`` over inputs ``< i``.

    State per node is ``(prefix, subcube_total)``; at bit ``j`` the upper
    partner (bit set) absorbs the lower partner's total into its prefix,
    and both merge totals — the classic hypercube scan, here run on the
    de Bruijn emulation by default.
    """
    h = _size_to_h(len(values))
    state = [(zero, v) for v in values]

    def op(bit, i, own, partner):
        pre, tot = own
        _p_pre, p_tot = partner
        if (i >> bit) & 1:
            # upper half: the partner's block precedes mine in index order,
            # so its total is combined on the LEFT (non-commutative safe)
            return (combine(p_tot, pre), combine(p_tot, tot))
        return (pre, combine(tot, p_tot))

    out, trace = _engine(h, backend, node_map)(state, ascend_schedule(h), op)
    return [pre for pre, _tot in out], trace


def broadcast(
    value,
    root: int,
    size: int,
    *,
    backend: str = "debruijn",
    node_map=None,
) -> tuple[list, EmulationTrace]:
    """One-to-all broadcast from ``root`` as an Ascend pass over
    (known?, value) flags."""
    h = _size_to_h(size)
    if not 0 <= root < size:
        raise ParameterError(f"root {root} out of range [0, {size})")
    state = [(i == root, value if i == root else None) for i in range(size)]

    def op(bit, i, own, partner):
        known, val = own
        p_known, p_val = partner
        if known:
            return own
        if p_known:
            return (True, p_val)
        return own

    out, trace = _engine(h, backend, node_map)(state, ascend_schedule(h), op)
    if not all(k for k, _ in out):
        raise ParameterError("broadcast failed to reach all nodes")  # pragma: no cover
    return [v for _k, v in out], trace
