"""Radix-2 decimation-in-frequency FFT as a Descend schedule.

DIF processes bits high-to-low — a pure Descend — which is why de Bruijn
and shuffle-exchange machines were historically pitched at signal
processing (Stone's original shuffle paper [13] is about exactly this).
The butterfly at bit ``j`` for pair ``(i0, i1 = i0 + 2^j)``:

    out[i0] = a + b
    out[i1] = (a - b) * W_N^{(i0 mod 2^j) * 2^{h-1-j}}

The result appears in bit-reversed index order; :func:`fft` returns it
re-permuted to natural order and is verified against ``numpy.fft.fft``.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.ascend_descend import (
    DeBruijnEmulation,
    EmulationTrace,
    HypercubeRunner,
    descend_schedule,
)
from repro.errors import ParameterError

__all__ = ["bit_reverse_indices", "fft", "fft_butterfly_op"]


def bit_reverse_indices(h: int) -> np.ndarray:
    """Index permutation ``rev`` with ``rev[k]`` = ``k`` bit-reversed."""
    n = 1 << h
    rev = np.zeros(n, dtype=np.int64)
    tmp = np.arange(n, dtype=np.int64)
    for _ in range(h):
        rev = (rev << 1) | (tmp & 1)
        tmp >>= 1
    return rev


def fft_butterfly_op(h: int):
    """The DIF butterfly as a PairOp over complex values."""
    n = 1 << h
    w = np.exp(-2j * np.pi / n)

    def op(bit, i, own, partner):
        if ((i >> bit) & 1) == 0:
            return own + partner
        # own is the upper element: b; partner is a
        exponent = (i % (1 << bit)) << (h - 1 - bit)
        return (partner - own) * (w ** exponent)

    return op


def fft(values, *, backend: str = "debruijn", node_map=None) -> tuple[np.ndarray, EmulationTrace]:
    """FFT of ``values`` (length ``2^h``) in natural order, plus the trace.

    ``backend`` selects the hypercube runner or the de Bruijn emulation
    (optionally through a reconfiguration node map φ).
    """
    vals = np.asarray(values, dtype=np.complex128)
    n = vals.shape[0]
    if n < 2 or n & (n - 1):
        raise ParameterError(f"fft needs a power-of-two size, got {n}")
    h = n.bit_length() - 1
    if backend == "hypercube":
        runner = HypercubeRunner(h).run
    elif backend == "debruijn":
        runner = DeBruijnEmulation(h, node_map=node_map).run
    elif backend in ("shuffle-exchange", "se"):
        from repro.algorithms.se_emulation import ShuffleExchangeEmulation

        runner = ShuffleExchangeEmulation(h, node_map=node_map).run
    else:
        raise ParameterError(f"unknown backend {backend!r}")
    out, trace = runner(list(vals), descend_schedule(h), fft_butterfly_op(h))
    out = np.asarray(out, dtype=np.complex128)
    natural = np.empty_like(out)
    natural[:] = out[bit_reverse_indices(h)]
    return natural, trace
