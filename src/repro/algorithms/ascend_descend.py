"""Normal (Ascend/Descend) algorithms and their de Bruijn emulation.

The paper's introduction leans on the fact that shuffle-exchange and
de Bruijn networks run the Preparata–Vuillemin *Ascend*/*Descend* classes
with constant-factor slowdown relative to the hypercube.  This module
makes that executable:

* :func:`run_reference` — the mathematical semantics: at a step for bit
  ``j`` every logical index ``i`` combines with its partner ``i XOR 2^j``.
* :class:`DeBruijnEmulation` — the same schedule on a de Bruijn machine.
  Invariant: after ``t`` net rotation steps, logical item ``b`` resides at
  physical node ``rot^t(b)``.  A pair step for bit ``j`` is legal exactly
  when ``(j + t) mod h == h - 1`` (the partners then differ in the *top*
  bit and share both de Bruijn successors, so the exchange-and-advance
  costs one round); rotation steps (``t ± 1``) realign between
  out-of-order bits.  Descend runs with **zero** extra rotations; Ascend
  costs a constant factor — the classic results, here verified hop by hop.

Every round's messages are recorded as physical ``(src, dst)`` pairs so
tests and benches can assert that *only physical edges* of the hosting
graph (plain ``B_{2,h}``, or the survivors of ``B^k_{2,h}`` through φ)
are ever used — including after faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.labels import rotate_left, validate_h
from repro.errors import ParameterError, SimulationError
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "PairOp",
    "run_reference",
    "descend_schedule",
    "ascend_schedule",
    "EmulationTrace",
    "DeBruijnEmulation",
    "HypercubeRunner",
]

#: ``op(bit, index, own_value, partner_value) -> new value`` for ``index``.
PairOp = Callable[[int, int, object, object], object]


def descend_schedule(h: int) -> list[int]:
    """Bits high-to-low: the Descend class."""
    return list(range(validate_h(h) - 1, -1, -1))


def ascend_schedule(h: int) -> list[int]:
    """Bits low-to-high: the Ascend class."""
    return list(range(validate_h(h)))


def run_reference(h: int, values: Sequence, schedule: Sequence[int], op: PairOp) -> list:
    """Hypercube-semantics reference: apply ``op`` over partner pairs for
    each bit in ``schedule``.  O(len(schedule) * 2^h)."""
    n = 1 << validate_h(h)
    if len(values) != n:
        raise ParameterError(f"need exactly {n} values, got {len(values)}")
    vals = list(values)
    for bit in schedule:
        if not 0 <= bit < h:
            raise ParameterError(f"bit {bit} out of range for h={h}")
        vals = [op(bit, i, vals[i], vals[i ^ (1 << bit)]) for i in range(n)]
    return vals


@dataclass
class EmulationTrace:
    """Physical communication record of an emulated run."""

    rounds: list[list[tuple[int, int]]] = field(default_factory=list)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def message_count(self) -> int:
        return sum(len(r) for r in self.rounds)

    def verify_against(self, host: StaticGraph) -> bool:
        """Every message must traverse a host edge (or be node-local)."""
        for msgs in self.rounds:
            for a, b in msgs:
                if a != b and not host.has_edge(a, b):
                    return False
        return True


class HypercubeRunner:
    """Direct hypercube execution: bit-``j`` steps use dimension-``j``
    links.  The baseline the constant-degree networks are measured
    against (degree ``h`` vs degree 4)."""

    def __init__(self, h: int):
        self.h = validate_h(h)
        self.n = 1 << h

    def run(self, values: Sequence, schedule: Sequence[int],
            op: PairOp) -> tuple[list, EmulationTrace]:
        vals = list(values)
        trace = EmulationTrace()
        for bit in schedule:
            msgs = [(i, i ^ (1 << bit)) for i in range(self.n)]
            vals = [op(bit, i, vals[i], vals[i ^ (1 << bit)]) for i in range(self.n)]
            trace.rounds.append(msgs)
        return vals, trace


class DeBruijnEmulation:
    """Run normal algorithms on a (possibly reconfigured) de Bruijn machine.

    Parameters
    ----------
    h:
        Logical machine size ``2^h``.
    node_map:
        Physical node hosting logical de Bruijn node ``v`` (default
        identity = the bare ``B_{2,h}``; pass the reconfiguration map φ to
        run on the survivors of ``B^k_{2,h}``).
    """

    def __init__(self, h: int, node_map: np.ndarray | None = None):
        self.h = validate_h(h)
        self.n = 1 << h
        if node_map is None:
            node_map = np.arange(self.n, dtype=np.int64)
        self.node_map = np.asarray(node_map, dtype=np.int64)
        if self.node_map.shape != (self.n,):
            raise ParameterError(
                f"node_map must have length {self.n}, got {self.node_map.shape}"
            )

    # -- placement bookkeeping ------------------------------------------------

    def _positions(self, t: int) -> np.ndarray:
        """Physical host of each logical item under offset ``t``:
        ``pos[b] = node_map[rot^t(b)]``."""
        ids = np.arange(self.n, dtype=np.int64)
        return self.node_map[rotate_left(ids, 2, self.h, steps=t % self.h)]

    def _rotation_round(self, t: int, forward: bool) -> list[tuple[int, int]]:
        """Messages for one whole-machine rotation (shuffle or unshuffle
        round): every item moves between consecutive rotation placements —
        each hop is a de Bruijn shift edge."""
        src = self._positions(t)
        dst = self._positions(t + 1 if forward else t - 1)
        return [
            (int(a), int(b)) for a, b in zip(src, dst) if a != b
        ]

    def _pair_round(self, t: int) -> list[tuple[int, int]]:
        """Messages for a pair step at offset ``t``: every physical node
        ``u`` (hosting some item) sends its value to both de Bruijn
        successors ``2u`` and ``2u+1`` (mod 2^h), lifted through the node
        map.  The receivers are exactly where the two pair results live at
        offset ``t + 1``."""
        ids = np.arange(self.n, dtype=np.int64)
        u = rotate_left(ids, 2, self.h, steps=t % self.h)
        msgs: list[tuple[int, int]] = []
        for r in (0, 1):
            y = (2 * u + r) % self.n
            msgs.extend(
                (int(a), int(b))
                for a, b in zip(self.node_map[u], self.node_map[y])
                if a != b
            )
        return sorted(set(msgs))

    # -- execution -----------------------------------------------------------------

    def run(
        self, values: Sequence, schedule: Sequence[int], op: PairOp
    ) -> tuple[list, EmulationTrace]:
        """Execute ``schedule`` and return ``(final_values, trace)``.

        ``final_values[b]`` is the result for logical index ``b`` (items
        are rotated back to offset 0 at the end, with the realignment
        rounds included in the trace)."""
        if len(values) != self.n:
            raise ParameterError(f"need exactly {self.n} values")
        vals = list(values)
        trace = EmulationTrace()
        t = 0
        for bit in schedule:
            if not 0 <= bit < self.h:
                raise ParameterError(f"bit {bit} out of range for h={self.h}")
            needed = (self.h - 1 - bit) % self.h
            delta = (needed - t) % self.h
            if delta <= self.h - delta:
                for _ in range(delta):
                    trace.rounds.append(self._rotation_round(t, forward=True))
                    t += 1
            else:
                for _ in range(self.h - delta):
                    trace.rounds.append(self._rotation_round(t, forward=False))
                    t -= 1
            if (bit + t) % self.h != self.h - 1:
                raise SimulationError("alignment invariant violated")
            trace.rounds.append(self._pair_round(t))
            vals = [op(bit, i, vals[i], vals[i ^ (1 << bit)]) for i in range(self.n)]
            t += 1
        # realign to offset 0 so results sit at node_map[b]
        while t % self.h != 0:
            delta = (-t) % self.h
            if delta <= self.h - delta:
                trace.rounds.append(self._rotation_round(t, forward=True))
                t += 1
            else:
                trace.rounds.append(self._rotation_round(t, forward=False))
                t -= 1
        return vals, trace
