"""End-to-end fault-tolerant execution of normal algorithms.

Ties together the layers the paper composes implicitly: take a workload
from :mod:`repro.algorithms`, a fault set, the paper's reconfiguration
map, and run the algorithm *on the survivors of* ``B^k_{2,h}`` — then
verify every message crossed a healthy physical edge.  This is the
"machine still works at full speed after k faults" demonstration.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.algorithms.ascend_descend import DeBruijnEmulation, EmulationTrace
from repro.core.debruijn import debruijn
from repro.core.fault_tolerant import ft_debruijn
from repro.core.reconfiguration import Reconfigurator
from repro.errors import SimulationError
from repro.graphs.static_graph import StaticGraph

__all__ = ["FaultTolerantMachine", "RunRecord"]


@dataclass(frozen=True)
class RunRecord:
    """Result of one fault-tolerant run."""

    values: list
    trace: EmulationTrace
    faults: tuple[int, ...]
    rounds: int
    messages: int


class FaultTolerantMachine:
    """A ``2^h``-processor logical machine on a ``B^k_{2,h}`` substrate.

    >>> m = FaultTolerantMachine(3, 1)
    >>> m.fail_node(4)
    >>> from repro.algorithms.prefix import allreduce
    >>> # collectives run through m.emulation() and stay on healthy edges
    """

    def __init__(self, h: int, k: int):
        self.h, self.k = int(h), int(k)
        self.n = 1 << h
        self.ft = ft_debruijn(2, h, k)
        self.target = debruijn(2, h)
        self.rec = Reconfigurator(self.ft.node_count, self.n)

    def fail_node(self, physical: int) -> None:
        """Report a physical failure; subsequent runs avoid the node."""
        self.rec.fail_node(physical)

    def repair_node(self, physical: int) -> None:
        self.rec.repair_node(physical)

    @property
    def faults(self) -> tuple[int, ...]:
        return self.rec.faults

    def healthy_graph(self) -> StaticGraph:
        """The fault-tolerant graph with faulty nodes isolated (edges
        incident to faults removed) — the physical plant available."""
        if not self.rec.faults:
            return self.ft
        sub, kept = self.ft.without_nodes(list(self.rec.faults))
        # re-inflate to full id space with faulty nodes isolated
        e = sub.edges()
        return StaticGraph(self.ft.node_count, kept[e] if e.shape[0] else ())

    def emulation(self) -> DeBruijnEmulation:
        """A de Bruijn emulation lifted through the current remap φ."""
        return DeBruijnEmulation(self.h, node_map=self.rec.phi())

    def run(self, values, schedule, op) -> RunRecord:
        """Run a normal algorithm and verify the physical trace.

        Raises :class:`SimulationError` if any message would traverse a
        missing or faulty edge — which Theorem 1 guarantees never happens.
        """
        emu = self.emulation()
        vals, trace = emu.run(values, schedule, op)
        if not trace.verify_against(self.healthy_graph()):
            raise SimulationError(
                "emulation used a faulty or missing physical edge"
            )
        return RunRecord(
            values=vals,
            trace=trace,
            faults=self.faults,
            rounds=trace.round_count,
            messages=trace.message_count,
        )
