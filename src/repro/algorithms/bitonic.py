"""Bitonic sorting networks as normal-algorithm schedules.

Batcher's bitonic sort over ``2^h`` keys is the canonical Ascend/Descend
workload: ``h`` merge stages, stage ``s`` running a Descend over bits
``s-1 .. 0`` with compare directions taken from bit ``s`` of each index
(stage ``h`` is all-ascending since bit ``h`` of any index is 0).  Total
``h(h+1)/2`` compare-exchange steps — all of them single-bit pair
operations, hence runnable verbatim on the de Bruijn emulation.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.ascend_descend import (
    DeBruijnEmulation,
    EmulationTrace,
    HypercubeRunner,
    PairOp,
)
from repro.core.labels import validate_h
from repro.errors import ParameterError

__all__ = ["bitonic_steps", "bitonic_compare_op", "bitonic_sort_reference",
           "bitonic_sort_on_debruijn", "bitonic_sort_on_hypercube"]


def bitonic_steps(h: int) -> list[tuple[int, int]]:
    """The ``(stage, bit)`` sequence of Batcher's network.

    >>> bitonic_steps(3)
    [(1, 0), (2, 1), (2, 0), (3, 2), (3, 1), (3, 0)]
    """
    h = validate_h(h, minimum=1)
    return [(s, t) for s in range(1, h + 1) for t in range(s - 1, -1, -1)]


def bitonic_compare_op(stage: int) -> PairOp:
    """Compare-exchange op for one merge stage.

    Index ``i`` sorts ascending within its block when bit ``stage`` of
    ``i`` is 0; the element with bit ``bit`` = 0 keeps the small key in an
    ascending block (large in a descending one).
    """

    def op(bit: int, i: int, own, partner):
        ascending = ((i >> stage) & 1) == 0
        low_side = ((i >> bit) & 1) == 0
        small, large = (own, partner) if own <= partner else (partner, own)
        if ascending:
            return small if low_side else large
        return large if low_side else small

    return op


def bitonic_sort_reference(values: Sequence) -> list:
    """Sort via the reference (hypercube-semantics) engine."""
    vals, _ = bitonic_sort_on_hypercube(values)
    return vals


def _run(values: Sequence, runner) -> tuple[list, EmulationTrace]:
    n = len(values)
    if n < 2 or n & (n - 1):
        raise ParameterError(f"bitonic sort needs a power-of-two size, got {n}")
    h = n.bit_length() - 1
    vals = list(values)
    trace = EmulationTrace()
    for stage, bit in bitonic_steps(h):
        vals, t = runner(vals, [bit], bitonic_compare_op(stage))
        trace.rounds.extend(t.rounds)
    return vals, trace


def bitonic_sort_on_hypercube(values: Sequence) -> tuple[list, EmulationTrace]:
    """Sort on the direct hypercube runner; returns values and the trace."""
    n = len(values)
    if n < 2 or n & (n - 1):
        raise ParameterError(f"bitonic sort needs a power-of-two size, got {n}")
    h = n.bit_length() - 1
    runner = HypercubeRunner(max(h, 1))
    return _run(values, runner.run)


def bitonic_sort_on_debruijn(
    values: Sequence, node_map=None
) -> tuple[list, EmulationTrace]:
    """Sort on the de Bruijn emulation (optionally through a
    reconfiguration map).  The trace verifies against ``B_{2,h}`` — or
    against ``B^k_{2,h}`` when ``node_map`` is a survivor remap φ."""
    n = len(values)
    if n < 2 or n & (n - 1):
        raise ParameterError(f"bitonic sort needs a power-of-two size, got {n}")
    h = n.bit_length() - 1
    emu = DeBruijnEmulation(max(h, 1), node_map=node_map)
    return _run(values, emu.run)


def bitonic_sort_on_shuffle_exchange(
    values: Sequence, node_map=None
) -> tuple[list, EmulationTrace]:
    """Sort on the shuffle-exchange emulation (optionally through the
    composed remap ``φ[ψ]`` of a fault-tolerant SE machine)."""
    from repro.algorithms.se_emulation import ShuffleExchangeEmulation

    n = len(values)
    if n < 2 or n & (n - 1):
        raise ParameterError(f"bitonic sort needs a power-of-two size, got {n}")
    h = n.bit_length() - 1
    emu = ShuffleExchangeEmulation(max(h, 1), node_map=node_map)
    return _run(values, emu.run)
