"""Ascend/Descend (normal) algorithms and their de Bruijn emulation."""

from repro.algorithms.ascend_descend import (
    DeBruijnEmulation,
    EmulationTrace,
    HypercubeRunner,
    PairOp,
    ascend_schedule,
    descend_schedule,
    run_reference,
)
from repro.algorithms.bitonic import (
    bitonic_compare_op,
    bitonic_sort_on_debruijn,
    bitonic_sort_on_hypercube,
    bitonic_sort_on_shuffle_exchange,
    bitonic_sort_reference,
    bitonic_steps,
)
from repro.algorithms.prefix import allreduce, broadcast, exclusive_prefix
from repro.algorithms.fft import bit_reverse_indices, fft, fft_butterfly_op
from repro.algorithms.emulation import FaultTolerantMachine, RunRecord
from repro.algorithms.se_emulation import (
    FaultTolerantSEMachine,
    ShuffleExchangeEmulation,
)

__all__ = [
    "DeBruijnEmulation",
    "EmulationTrace",
    "HypercubeRunner",
    "PairOp",
    "ascend_schedule",
    "descend_schedule",
    "run_reference",
    "bitonic_compare_op",
    "bitonic_sort_on_debruijn",
    "bitonic_sort_on_hypercube",
    "bitonic_sort_reference",
    "bitonic_steps",
    "allreduce",
    "broadcast",
    "exclusive_prefix",
    "bit_reverse_indices",
    "fft",
    "fft_butterfly_op",
    "FaultTolerantMachine",
    "RunRecord",
    "bitonic_sort_on_shuffle_exchange",
    "ShuffleExchangeEmulation",
    "FaultTolerantSEMachine",
]
