"""Classic de Bruijn shift-register routing.

A de Bruijn node is a length-``h`` window over a digit stream; to route
from ``x`` to ``y``, find the longest suffix of ``x`` that is a prefix of
``y`` and shift in the remaining digits of ``y`` one per hop.  At most
``h`` hops — the property that makes de Bruijn networks competitive with
hypercubes at constant degree (paper §I and reference [1]).
"""

from __future__ import annotations

import numpy as np

from repro.core.labels import to_digits, validate_base, validate_h
from repro.errors import ParameterError

__all__ = [
    "overlap_length",
    "overlap_length_batch",
    "route_hop_pairs",
    "shift_route",
    "shift_route_batch",
    "route_length",
    "route_length_matrix",
]


def route_hop_pairs(flat: np.ndarray, offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Consecutive intra-route hop pairs ``(a, b)`` of a flattened route
    batch in the ``(flat, offsets)`` layout — the pairs that must be graph
    edges.  Route boundaries contribute no pair.

    >>> import numpy as np
    >>> a, b = route_hop_pairs(np.array([0, 1, 2, 7, 3]), np.array([0, 3, 5]))
    >>> list(zip(a.tolist(), b.tolist()))
    [(0, 1), (1, 2), (7, 3)]
    """
    if flat.size <= 1:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    is_last = np.zeros(flat.size, dtype=bool)
    is_last[offsets[1:] - 1] = True
    keep = ~is_last[:-1]
    return flat[:-1][keep], flat[1:][keep]


def overlap_length(x: int, y: int, m: int, h: int) -> int:
    """Length of the longest suffix of ``x``'s digit string that equals a
    prefix of ``y``'s digit string (0..h).

    >>> overlap_length(0b0111, 0b1110, 2, 4)
    3
    """
    dx = to_digits(x, m, h)
    dy = to_digits(y, m, h)
    for ell in range(h, -1, -1):
        if ell == 0:
            return 0
        if np.array_equal(dx[h - ell:], dy[:ell]):
            return ell
    return 0


def shift_route(x: int, y: int, m: int, h: int) -> list[int]:
    """The shift-register route from ``x`` to ``y`` as a node list
    (inclusive of both endpoints; length ``h - overlap + 1``).

    Every consecutive pair is a directed de Bruijn arc
    ``v -> (m*v + r) mod m^h``.

    >>> shift_route(0, 5, 2, 3)
    [0, 1, 2, 5]
    """
    m = validate_base(m)
    h = validate_h(h)
    n = m ** h
    if not (0 <= x < n and 0 <= y < n):
        raise ParameterError(f"endpoints must lie in [0, {n})")
    ell = overlap_length(x, y, m, h)
    dy = to_digits(y, m, h)
    path = [int(x)]
    cur = int(x)
    for pos in range(ell, h):
        cur = (m * cur + int(dy[pos])) % n
        path.append(cur)
    assert path[-1] == y
    return path


def overlap_length_batch(xs: np.ndarray, ys: np.ndarray, m: int, h: int) -> np.ndarray:
    """Vectorized :func:`overlap_length` over parallel endpoint arrays.

    >>> overlap_length_batch(np.array([0b0111, 0]), np.array([0b1110, 5]), 2, 4).tolist()
    [3, 1]
    """
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ParameterError("endpoint arrays must be 1-D and of equal length")
    if xs.size == 0:
        return np.zeros(0, dtype=np.int64)
    dx = to_digits(xs, m, h)
    dy = to_digits(ys, m, h)
    ell = np.zeros(xs.size, dtype=np.int64)
    undecided = np.ones(xs.size, dtype=bool)
    for length in range(h, 0, -1):
        match = (dx[:, h - length:] == dy[:, :length]).all(axis=1)
        take = undecided & match
        ell[take] = length
        undecided &= ~match
    return ell


def shift_route_batch(
    xs: np.ndarray, ys: np.ndarray, m: int, h: int
) -> tuple[np.ndarray, np.ndarray]:
    """All shift-register routes for parallel ``(xs[i], ys[i])`` pairs,
    flattened for the batch simulation engine.

    Returns ``(flat, offsets)`` where packet ``i``'s route (inclusive of
    both endpoints, exactly :func:`shift_route`'s node list) occupies
    ``flat[offsets[i]:offsets[i + 1]]``.  No per-packet Python loops: the
    digit pipeline advances all routes one shift per vectorized step.

    >>> flat, off = shift_route_batch(np.array([0]), np.array([5]), 2, 3)
    >>> flat.tolist(), off.tolist()
    ([0, 1, 2, 5], [0, 4])
    """
    m = validate_base(m)
    h = validate_h(h)
    n = m ** h
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ParameterError("endpoint arrays must be 1-D and of equal length")
    if xs.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    if xs.min() < 0 or ys.min() < 0 or xs.max() >= n or ys.max() >= n:
        raise ParameterError(f"endpoints must lie in [0, {n})")
    ell = overlap_length_batch(xs, ys, m, h)
    dy = to_digits(ys, m, h)
    lens = h - ell + 1  # nodes per route
    offsets = np.zeros(xs.size + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    work = np.zeros((xs.size, h + 1), dtype=np.int64)
    work[:, 0] = xs
    cur = xs.copy()
    rows = np.arange(xs.size)
    for step in range(1, h + 1):
        active = lens > step
        if not active.any():
            break
        digit = dy[rows[active], ell[active] + step - 1]
        cur[active] = (m * cur[active] + digit) % n
        work[active, step] = cur[active]
    mask = np.arange(h + 1)[None, :] < lens[:, None]
    return work[mask], offsets


def route_length(x: int, y: int, m: int, h: int) -> int:
    """Hop count of the shift-register route: ``h - overlap_length``."""
    return validate_h(h) - overlap_length(x, y, m, h)


def route_length_matrix(m: int, h: int) -> np.ndarray:
    """All-pairs shift-route lengths (an upper bound on true distances,
    exact up to the use of predecessor arcs)."""
    n = validate_base(m) ** validate_h(h)
    out = np.empty((n, n), dtype=np.int64)
    for x in range(n):
        for y in range(n):
            out[x, y] = route_length(x, y, m, h)
    return out
