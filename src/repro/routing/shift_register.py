"""Classic de Bruijn shift-register routing.

A de Bruijn node is a length-``h`` window over a digit stream; to route
from ``x`` to ``y``, find the longest suffix of ``x`` that is a prefix of
``y`` and shift in the remaining digits of ``y`` one per hop.  At most
``h`` hops — the property that makes de Bruijn networks competitive with
hypercubes at constant degree (paper §I and reference [1]).
"""

from __future__ import annotations

import numpy as np

from repro.core.labels import from_digits, to_digits, validate_base, validate_h
from repro.errors import ParameterError

__all__ = ["overlap_length", "shift_route", "route_length", "route_length_matrix"]


def overlap_length(x: int, y: int, m: int, h: int) -> int:
    """Length of the longest suffix of ``x``'s digit string that equals a
    prefix of ``y``'s digit string (0..h).

    >>> overlap_length(0b0111, 0b1110, 2, 4)
    3
    """
    dx = to_digits(x, m, h)
    dy = to_digits(y, m, h)
    for ell in range(h, -1, -1):
        if ell == 0:
            return 0
        if np.array_equal(dx[h - ell:], dy[:ell]):
            return ell
    return 0


def shift_route(x: int, y: int, m: int, h: int) -> list[int]:
    """The shift-register route from ``x`` to ``y`` as a node list
    (inclusive of both endpoints; length ``h - overlap + 1``).

    Every consecutive pair is a directed de Bruijn arc
    ``v -> (m*v + r) mod m^h``.

    >>> shift_route(0, 5, 2, 3)
    [0, 1, 2, 5]
    """
    m = validate_base(m)
    h = validate_h(h)
    n = m ** h
    if not (0 <= x < n and 0 <= y < n):
        raise ParameterError(f"endpoints must lie in [0, {n})")
    ell = overlap_length(x, y, m, h)
    dy = to_digits(y, m, h)
    path = [int(x)]
    cur = int(x)
    for pos in range(ell, h):
        cur = (m * cur + int(dy[pos])) % n
        path.append(cur)
    assert path[-1] == y
    return path


def route_length(x: int, y: int, m: int, h: int) -> int:
    """Hop count of the shift-register route: ``h - overlap_length``."""
    return validate_h(h) - overlap_length(x, y, m, h)


def route_length_matrix(m: int, h: int) -> np.ndarray:
    """All-pairs shift-route lengths (an upper bound on true distances,
    exact up to the use of predecessor arcs)."""
    n = validate_base(m) ** validate_h(h)
    out = np.empty((n, n), dtype=np.int64)
    for x in range(n):
        for y in range(n):
            out[x, y] = route_length(x, y, m, h)
    return out
