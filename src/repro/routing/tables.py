"""Compiled next-hop routing tables.

A routing table is an ``(n, n)`` int array: ``table[v, d]`` is the
neighbor ``v`` forwards to for destination ``d`` (``table[d, d] = d``;
``-1`` marks unreachable pairs).  Tables are compiled from per-destination
BFS trees, so the distributed forwarding they encode is hop-optimal; the
simulator executes them directly.

:class:`RouteTable` wraps the array as a *pickle-safe* batch artifact:
compile once in the parent process, ship it to shard workers (it is pure
NumPy data, so it pickles compactly by value), and extract whole route
batches vectorized with :meth:`RouteTable.routes_batch` — the format the
simulation engines inject directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError
from repro.graphs.bitset import (
    NO_PARENT,
    hop_parent_table,
    mask_nodes_csr,
)
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "UNREACHABLE",
    "RouteTable",
    "compile_routing_table",
    "compile_routing_table_frontier",
    "table_reachable",
    "table_routes_batch",
    "table_routes_batch_masked",
    "validate_routing_table",
    "table_path",
]

#: Next-hop sentinel for pairs the compiled graph cannot connect.  A
#: table compiled from a disconnected survivor graph is still well
#: defined: every entry is either a real neighbor or exactly this value,
#: and the batch extractors either raise (:func:`table_routes_batch`) or
#: skip-and-report (:func:`table_routes_batch_masked`) — never follow it.
#: Numerically the same sentinel the bitset kernel emits, so its output
#: is adopted as a routing table without translation.
UNREACHABLE = NO_PARENT


def compile_routing_table(g: StaticGraph, *, faulty=None) -> np.ndarray:
    """All-pairs next-hop table via the bit-parallel CSR kernel.

    For destination ``d``, the BFS parent of ``v`` in the tree rooted at
    ``d`` *is* the hop-optimal next hop (the graph is undirected), and
    :func:`repro.graphs.bitset.hop_parent_table` computes every tree at
    once: one reach-bitset sweep per level covers all ``n`` destinations,
    64 per machine word, instead of ``n`` separate BFS runs.

    ``faulty`` (optional iterable of node ids) compiles the *survivor*
    table directly: every fault-incident edge is masked out of the CSR
    stream (:func:`repro.graphs.bitset.mask_nodes_csr` — pure array
    slicing, no graph rebuild), all ``n`` rows are kept so no id
    remapping is needed downstream, and each faulty node's diagonal is
    forced to :data:`UNREACHABLE` so a dead endpoint never admits even
    the trivial self-route.

    Parent tie-breaking: the smallest hop-optimal neighbor id (lowest
    CSR rank) — the same rule as :func:`compile_routing_table_frontier`
    and the dict reference in the conformance harness, so all three are
    bit-identical; equal-length *paths* may still differ from the scalar
    discovery-order BFS in
    :func:`~repro.routing.shortest_path.bfs_parents`, which is why the
    conformance suite (``tests/conformance/``) pins hop-count + validity
    equivalence against that oracle and exact equality among compilers.
    """
    n = g.node_count
    indptr, indices = g.row_offsets, g.col_indices
    dead = None
    if faulty is not None:
        dead = np.unique(np.fromiter((int(v) for v in faulty), dtype=np.int64))
        if dead.size and (dead[0] < 0 or dead[-1] >= n):
            bad = dead[0] if dead[0] < 0 else dead[-1]
            raise RoutingError(f"fault node {bad} out of range [0, {n})")
        if dead.size:
            alive = np.ones(n, dtype=bool)
            alive[dead] = False
            indptr, indices = mask_nodes_csr(n, indptr, indices, alive)
    table = hop_parent_table(n, indptr, indices)
    if dead is not None and dead.size:
        table[dead, dead] = UNREACHABLE  # no self-route to a dead endpoint
    return table


def compile_routing_table_frontier(g: StaticGraph) -> np.ndarray:
    """Next-hop table via one frontier-at-a-time reverse BFS per destination.

    The retained per-destination compiler: each BFS level is one
    vectorized gather over the CSR arrays (the
    :meth:`~repro.graphs.static_graph.StaticGraph.neighbors_batch`
    idiom), with the first occurrence in gather order claiming the
    parent — the frontier is sorted ascending, so that is the smallest
    hop-optimal neighbor id, the *same* tie-break as the bitset kernel.
    Kept as the bench reference (``driver="compile"``) and as the
    independently-derived second witness the differential suite checks
    bit-for-bit against :func:`compile_routing_table`.
    """
    n = g.node_count
    table = np.full((n, n), UNREACHABLE, dtype=np.int64)
    indptr, indices = g.indptr, g.indices
    deg = np.diff(indptr)
    for d in range(n):
        parent = np.full(n, -1, dtype=np.int64)
        parent[d] = d
        frontier = np.array([d], dtype=np.int64)
        while frontier.size:
            counts = deg[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            # gather every frontier node's neighbor slice in one shot:
            # base[i] repeats the slice start, inner[i] counts 0..c-1
            # within each slice
            starts = indptr[frontier]
            base = np.repeat(starts, counts)
            ends = np.cumsum(counts)
            inner = np.arange(total, dtype=np.int64) - np.repeat(
                ends - counts, counts
            )
            nbrs = indices[base + inner]
            owners = np.repeat(frontier, counts)
            fresh = parent[nbrs] == -1
            if not fresh.any():
                break
            nbrs, owners = nbrs[fresh], owners[fresh]
            # first occurrence in gather order claims the parent
            frontier, first = np.unique(nbrs, return_index=True)
            parent[frontier] = owners[first]
        reachable = parent >= 0
        table[reachable, d] = parent[reachable]
        table[d, d] = d
    return table


def table_reachable(
    table: np.ndarray, srcs: np.ndarray, dsts: np.ndarray
) -> np.ndarray:
    """Boolean mask: which (src, dst) pairs the table can route.

    A pair is routable exactly when its entry is not the
    :data:`UNREACHABLE` sentinel — BFS-compiled tables mark every
    disconnected pair that way, so one gather answers the whole batch.
    ``src == dst`` reads the diagonal: a live node self-routes
    (``table[v, v] = v``), while survivor tables
    (:func:`repro.routing.fault_routing.survivor_route_table`) mark
    faulty nodes' diagonals unreachable so a dead endpoint never admits
    even the trivial route.
    """
    srcs = np.asarray(srcs, dtype=np.int64).ravel()
    dsts = np.asarray(dsts, dtype=np.int64).ravel()
    if srcs.shape != dsts.shape:
        raise RoutingError("srcs and dsts must have equal shape")
    n = table.shape[0]
    if srcs.size == 0:
        return np.zeros(0, dtype=bool)
    if srcs.min() < 0 or dsts.min() < 0 or srcs.max() >= n or dsts.max() >= n:
        raise RoutingError("endpoint out of range for the routing table")
    return table[srcs, dsts] != UNREACHABLE


def table_routes_batch(
    table: np.ndarray, srcs: np.ndarray, dsts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Follow a next-hop table for a whole batch of pairs at once.

    Returns ``(flat, offsets)`` in the engines' shared injection layout
    (packet ``i``'s route is ``flat[offsets[i]:offsets[i + 1]]``).  The
    follow is vectorized over the batch: one gather per hop level, so the
    work is O(batch x diameter) NumPy ops instead of a Python loop per
    pair.  Raises :class:`RoutingError` on the first unreachable pair.
    """
    srcs = np.asarray(srcs, dtype=np.int64).ravel()
    dsts = np.asarray(dsts, dtype=np.int64).ravel()
    if srcs.shape != dsts.shape:
        raise RoutingError("srcs and dsts must have equal shape")
    n = table.shape[0]
    count = srcs.size
    if count == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    if srcs.min() < 0 or dsts.min() < 0 or srcs.max() >= n or dsts.max() >= n:
        raise RoutingError("endpoint out of range for the routing table")
    levels = [srcs.copy()]
    cur = srcs.copy()
    active = cur != dsts
    for _ in range(n):
        if not active.any():
            break
        nxt = cur.copy()
        step = table[cur[active], dsts[active]]
        if (step < 0).any():
            i = int(np.flatnonzero(active)[np.flatnonzero(step < 0)[0]])
            raise RoutingError(f"no route from {srcs[i]} to {dsts[i]}")
        nxt[active] = step
        levels.append(nxt)
        cur = nxt
        active = active & (cur != dsts)
    else:  # pragma: no cover - validate_routing_table guards against loops
        i = int(np.flatnonzero(active)[0])
        raise RoutingError(f"routing loop from {srcs[i]} toward {dsts[i]}")
    # per-packet route length = 1 + first level where the walk hit dst
    stack = np.stack(levels)                       # (depth + 1, count)
    hit = stack == dsts[np.newaxis, :]
    lens = np.argmax(hit, axis=0) + 1              # first hit level, 1-based
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    keep = np.arange(stack.shape[0])[:, np.newaxis] < lens[np.newaxis, :]
    flat = stack.T[keep.T]                         # row-major: packet-contiguous
    return flat.astype(np.int64, copy=False), offsets


def table_routes_batch_masked(
    table: np.ndarray, srcs: np.ndarray, dsts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`table_routes_batch`, but unreachable pairs are skipped
    instead of raising.

    Returns ``(flat, offsets, kept)``: routes for the reachable pairs in
    the engines' shared layout plus the (sorted) indices of the input
    pairs that were routable — the same contract
    :meth:`repro.simulator.faults.DetourController.detour_routes_batch`
    exposes, so callers can charge the dropped pairs to their
    offered-but-unadmitted accounting.
    """
    srcs = np.asarray(srcs, dtype=np.int64).ravel()
    dsts = np.asarray(dsts, dtype=np.int64).ravel()
    ok = table_reachable(table, srcs, dsts)
    kept = np.flatnonzero(ok).astype(np.int64)
    flat, offsets = table_routes_batch(table, srcs[kept], dsts[kept])
    return flat, offsets, kept


@dataclass(frozen=True, eq=False)
class RouteTable:
    """A compiled next-hop table as a pickle-safe batch-routing artifact.

    Holds nothing but the dense ``(n, n)`` int64 array, so it crosses
    process boundaries by value (no graph object, no closures) — compile
    once per fault epoch in the driver process, hand it to every shard
    worker.  ``table_path``/``table_routes_batch`` semantics apply.

    >>> from repro.graphs.static_graph import StaticGraph
    >>> rt = RouteTable.compile(StaticGraph(3, [(0, 1), (1, 2)]))
    >>> rt.route(0, 2)
    [0, 1, 2]
    """

    table: np.ndarray

    def __post_init__(self):
        t = np.asarray(self.table, dtype=np.int64)
        if t.ndim != 2 or t.shape[0] != t.shape[1]:
            raise RoutingError(f"route table must be square, got {t.shape}")
        object.__setattr__(self, "table", t)

    def __eq__(self, other: object) -> bool:
        # the generated dataclass __eq__ would raise on ndarray fields
        if not isinstance(other, RouteTable):
            return NotImplemented
        return np.array_equal(self.table, other.table)

    @classmethod
    def compile(cls, g: StaticGraph) -> "RouteTable":
        """Compile from per-destination BFS trees (hop-optimal)."""
        return cls(compile_routing_table(g))

    @property
    def node_count(self) -> int:
        """Nodes the table routes over (its square dimension)."""
        return int(self.table.shape[0])

    def route(self, src: int, dst: int) -> list[int]:
        """Single-pair route (convenience wrapper over the batch path)."""
        return table_path(self.table, src, dst)

    def routes_batch(
        self, srcs: np.ndarray, dsts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized batch extraction — see :func:`table_routes_batch`."""
        return table_routes_batch(self.table, srcs, dsts)

    def reachable(self, srcs: np.ndarray, dsts: np.ndarray) -> np.ndarray:
        """Which pairs this table can route — see :func:`table_reachable`."""
        return table_reachable(self.table, srcs, dsts)

    def routes_batch_masked(
        self, srcs: np.ndarray, dsts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Skip-and-report batch extraction — see
        :func:`table_routes_batch_masked`."""
        return table_routes_batch_masked(self.table, srcs, dsts)

    # -- shared-memory plane -------------------------------------------

    def to_shm(self, *, name: str | None = None):
        """Export the dense table into one shared-memory segment.

        Returns the owning :class:`repro.shm.ShmBlock` — the caller
        unlinks it when no worker needs the table anymore.  An ``(n, n)``
        table is the biggest per-epoch artifact the shard plumbing
        ships, so attaching (:meth:`from_shm`) instead of pickling it
        per task is the difference between O(1) and O(n²) per dispatch.
        """
        from repro.shm import export_arrays

        return export_arrays({"table": self.table}, name=name)

    @classmethod
    def from_shm(cls, name: str) -> "RouteTable":
        """Attach to a table exported by :meth:`to_shm` — zero copy.

        The returned table's array is a read-only view into the shared
        segment; the instance keeps the mapping alive.  Pickling such a
        table materializes the array (the receiver may not see the
        segment), matching :meth:`StaticGraph.from_shm` semantics.
        """
        from repro.shm import attach_arrays

        arrays, block = attach_arrays(name)
        rt = cls(arrays["table"])
        object.__setattr__(rt, "_shm", block)
        return rt

    def close_shm(self) -> None:
        """Drop an attached mapping (no-op for ordinary tables)."""
        block = getattr(self, "_shm", None)
        if block is not None:
            block.close()
            object.__setattr__(self, "_shm", None)

    def __getstate__(self):
        if getattr(self, "_shm", None) is not None:
            return {"table": np.array(self.table)}
        return {"table": self.table}

    def __setstate__(self, state):
        object.__setattr__(self, "table", state["table"])


def table_path(table: np.ndarray, source: int, dest: int) -> list[int]:
    """Follow a routing table from ``source`` to ``dest``."""
    n = table.shape[0]
    path = [int(source)]
    cur = int(source)
    for _ in range(n + 1):
        if cur == dest:
            return path
        nxt = int(table[cur, dest])
        if nxt < 0:
            raise RoutingError(f"no route from {source} to {dest}")
        cur = nxt
        path.append(cur)
    raise RoutingError(f"routing loop from {source} toward {dest}")


def validate_routing_table(g: StaticGraph, table: np.ndarray) -> bool:
    """Every table entry must be a real neighbor and every route must
    terminate within ``n`` hops.  Used as a post-compilation invariant and
    by tests as an independent check."""
    n = g.node_count
    if table.shape != (n, n):
        raise RoutingError(f"table shape {table.shape} != ({n}, {n})")
    for v in range(n):
        for d in range(n):
            nh = int(table[v, d])
            if nh == -1 or v == d:
                continue
            if nh != d and not g.has_edge(v, nh) or (nh == d and not g.has_edge(v, d)):
                if not g.has_edge(v, nh):
                    return False
    # spot-terminating: follow a sample of routes
    rngish = range(0, n, max(1, n // 8))
    for s in rngish:
        for d in rngish:
            if table[s, d] >= 0:
                table_path(table, s, d)
    return True
