"""Compiled next-hop routing tables.

A routing table is an ``(n, n)`` int array: ``table[v, d]`` is the
neighbor ``v`` forwards to for destination ``d`` (``table[d, d] = d``;
``-1`` marks unreachable pairs).  Tables are compiled from per-destination
BFS trees, so the distributed forwarding they encode is hop-optimal; the
simulator executes them directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RoutingError
from repro.graphs.static_graph import StaticGraph
from repro.routing.shortest_path import bfs_parents

__all__ = ["compile_routing_table", "validate_routing_table", "table_path"]


def compile_routing_table(g: StaticGraph) -> np.ndarray:
    """Next-hop table via one reverse BFS per destination.

    For destination ``d``, the BFS parent of ``v`` in the tree rooted at
    ``d`` *is* the hop-optimal next hop (the graph is undirected).
    """
    n = g.node_count
    table = np.full((n, n), -1, dtype=np.int64)
    for d in range(n):
        parent = bfs_parents(g, d)
        reachable = parent >= 0
        table[reachable, d] = parent[reachable]
        table[d, d] = d
    return table


def table_path(table: np.ndarray, source: int, dest: int) -> list[int]:
    """Follow a routing table from ``source`` to ``dest``."""
    n = table.shape[0]
    path = [int(source)]
    cur = int(source)
    for _ in range(n + 1):
        if cur == dest:
            return path
        nxt = int(table[cur, dest])
        if nxt < 0:
            raise RoutingError(f"no route from {source} to {dest}")
        cur = nxt
        path.append(cur)
    raise RoutingError(f"routing loop from {source} toward {dest}")


def validate_routing_table(g: StaticGraph, table: np.ndarray) -> bool:
    """Every table entry must be a real neighbor and every route must
    terminate within ``n`` hops.  Used as a post-compilation invariant and
    by tests as an independent check."""
    n = g.node_count
    if table.shape != (n, n):
        raise RoutingError(f"table shape {table.shape} != ({n}, {n})")
    for v in range(n):
        for d in range(n):
            nh = int(table[v, d])
            if nh == -1 or v == d:
                continue
            if nh != d and not g.has_edge(v, nh) or (nh == d and not g.has_edge(v, d)):
                if not g.has_edge(v, nh):
                    return False
    # spot-terminating: follow a sample of routes
    rngish = range(0, n, max(1, n // 8))
    for s in rngish:
        for d in rngish:
            if table[s, d] >= 0:
                table_path(table, s, d)
    return True
