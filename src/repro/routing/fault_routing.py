"""Routing on faulty machines: the reconfigured lift vs. naive detours.

Two strategies are implemented, matching the paper's motivation (§I: in a
constant-degree network "a single processor or link failure can severely
degrade the performance"):

* :class:`ReconfiguredRouter` — the paper's answer.  Logical traffic is
  routed on the *intact* target ``B_{m,h}`` (shift-register or table
  routes) and the path is lifted through the reconfiguration map φ; every
  lifted hop is a physical edge of ``B^k_{m,h}`` by Theorem 1/2, so path
  lengths are *identical* to the fault-free machine.
* :func:`detour_route` — the spare-less baseline: route around faults
  inside the surviving subgraph of the bare target graph.  Paths stretch,
  and with enough faults the survivor graph disconnects (Esfahanian–Hakimi
  territory); the MOTIV bench quantifies the gap.
"""

from __future__ import annotations

import numpy as np

from repro.core.debruijn import debruijn
from repro.core.fault_tolerant import ft_debruijn
from repro.core.reconfiguration import Reconfigurator
from repro.errors import RoutingError
from repro.graphs.static_graph import StaticGraph
from repro.routing.shift_register import (
    route_hop_pairs,
    shift_route,
    shift_route_batch,
)
from repro.routing.shortest_path import bfs_parents, extract_path

__all__ = [
    "ReconfiguredRouter",
    "detour_route",
    "lifted_routes_batch",
    "survivor_graph",
    "survivor_route_table",
]


def lifted_routes_batch(
    m: int, h: int, phi: np.ndarray, srcs: np.ndarray, dsts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Shift-register routes for a batch of logical pairs, lifted through
    the reconfiguration map ``φ``: ``(flat, offsets)`` arrays in the
    :func:`repro.routing.shift_register.shift_route_batch` layout, ready
    for ``inject_routes`` on either simulation engine."""
    flat, offsets = shift_route_batch(srcs, dsts, m, h)
    return phi[flat], offsets


class ReconfiguredRouter:
    """Routes on a reconfigured fault-tolerant de Bruijn machine.

    Parameters
    ----------
    m, h, k:
        Construction parameters of the underlying ``B^k_{m,h}``.

    Logical endpoints are target-graph nodes ``0..m^h - 1``; physical
    routes are returned in fault-tolerant-graph coordinates.
    """

    def __init__(self, m: int, h: int, k: int):
        self.m, self.h, self.k = int(m), int(h), int(k)
        self.target = debruijn(m, h)
        self.ft = ft_debruijn(m, h, k)
        self.reconfigurator = Reconfigurator(self.ft.node_count, self.target.node_count)

    def fail_node(self, physical: int) -> None:
        """Report a physical node failure; the remap updates immediately."""
        self.reconfigurator.fail_node(physical)

    def repair_node(self, physical: int) -> None:
        """Return a physical node to service."""
        self.reconfigurator.repair_node(physical)

    def logical_route(self, src: int, dst: int) -> list[int]:
        """Shift-register route in target coordinates (<= h hops)."""
        return shift_route(src, dst, self.m, self.h)

    def physical_route(self, src: int, dst: int) -> list[int]:
        """The lifted route ``[φ(v) for v in logical_route]``.

        Raises :class:`RoutingError` if any lifted hop is missing from the
        fault-tolerant graph — which Theorems 1/2 guarantee cannot happen
        (the check is kept as a runtime invariant).
        """
        phi = self.reconfigurator.phi()
        route = [int(phi[v]) for v in self.logical_route(src, dst)]
        for a, b in zip(route, route[1:]):
            if a != b and not self.ft.has_edge(a, b):
                raise RoutingError(
                    f"lifted hop ({a}, {b}) missing — invariant violated"
                )
        return route

    def physical_routes_batch(
        self, srcs: np.ndarray, dsts: np.ndarray, *, validate: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lifted routes for a whole batch of logical pairs at once.

        Returns ``(flat, offsets)`` arrays in the
        :func:`repro.routing.shift_register.shift_route_batch` layout, with
        every node already pushed through φ — ready for
        :meth:`repro.simulator.batch_engine.BatchEngine.inject_routes`.
        ``validate=True`` re-checks the Theorem 1/2 invariant (every lifted
        hop is a physical edge) with one vectorized ``has_edges`` call.
        """
        flat, offsets = lifted_routes_batch(
            self.m, self.h, self.reconfigurator.phi(), srcs, dsts
        )
        if validate and flat.size > 1:
            a, b = route_hop_pairs(flat, offsets)
            ok = self.ft.has_edges(a, b)
            if not ok.all():
                i = int(np.flatnonzero(~ok)[0])
                raise RoutingError(
                    f"lifted hop ({a[i]}, {b[i]}) missing — invariant violated"
                )
        return flat, offsets

    def route_length(self, src: int, dst: int) -> int:
        """Hops of the reconfigured route — equal to the fault-free length
        (reconfiguration costs zero dilation; contrast with detours)."""
        return len(self.physical_route(src, dst)) - 1


def survivor_graph(g: StaticGraph, faults) -> tuple[StaticGraph, np.ndarray]:
    """The induced subgraph on non-faulty nodes plus the kept-id array."""
    return g.without_nodes(np.asarray(list(faults), dtype=np.int64))


def survivor_route_table(g: StaticGraph, faults) -> "RouteTable":
    """Compile a detour :class:`~repro.routing.tables.RouteTable` for the
    survivor graph of ``g`` under ``faults``, in *original* node ids.

    The table keeps all ``n`` rows/columns (so batch extraction needs no
    id remapping) but is compiled on the graph with every fault-incident
    edge removed: a faulty or disconnected endpoint simply yields the
    :data:`~repro.routing.tables.UNREACHABLE` sentinel — including a
    faulty node's *diagonal*, so ``table_reachable`` refuses even the
    trivial self-route to a dead endpoint.  Routes are
    hop-optimal in the survivor graph — the same lengths
    :func:`detour_route`'s per-pair BFS produces, though tie-breaking
    between equal-length paths may differ (the conformance suite pins
    hop-count + validity equivalence, not path equality).

    This is the compile-once artifact
    :class:`repro.simulator.faults.DetourController` caches per fault
    epoch when ``route_mode="table"`` — the cache keys on the frozen
    fault set, so both fault *and* repair events (churn universes)
    invalidate it and the next routed batch recompiles against the
    current survivors.

    The masking happens as array slicing on the canonical CSR planes
    inside :func:`~repro.routing.tables.compile_routing_table` — no
    survivor :class:`StaticGraph` is ever materialized.
    """
    from repro.routing.tables import RouteTable, compile_routing_table

    return RouteTable(compile_routing_table(g, faulty=faults))


def detour_route(g: StaticGraph, faults, src: int, dst: int) -> list[int]:
    """Hop-optimal route between two healthy nodes avoiding ``faults``
    inside the bare graph ``g`` (original node ids).

    Raises :class:`RoutingError` when an endpoint is faulty or the
    survivors disconnect the pair — the failure mode spare-less machines
    are exposed to.
    """
    fset = {int(v) for v in faults}
    if src in fset or dst in fset:
        raise RoutingError("endpoint is faulty")
    sub, kept = survivor_graph(g, sorted(fset))
    pos = {int(old): i for i, old in enumerate(kept)}
    s, d = pos[int(src)], pos[int(dst)]
    if s == d:
        return [int(src)]
    parent = bfs_parents(sub, s)
    sub_path = extract_path(parent, s, d)
    return [int(kept[v]) for v in sub_path]
