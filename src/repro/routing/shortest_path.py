"""BFS shortest-path machinery on :class:`StaticGraph`.

Complements the analytical shift-register routes with exact hop-optimal
paths (de Bruijn distance can beat pure forward shifting by using
predecessor arcs), and provides the parent trees that routing tables are
compiled from.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError, RoutingError
from repro.graphs.static_graph import StaticGraph

__all__ = ["bfs_parents", "extract_path", "shortest_path", "eccentricity"]


def bfs_parents(g: StaticGraph, source: int) -> np.ndarray:
    """BFS tree parents from ``source``: ``parent[source] = source``,
    ``parent[v] = -1`` for unreachable ``v``."""
    n = g.node_count
    if not 0 <= source < n:
        raise GraphFormatError(f"source {source} out of range [0, {n})")
    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for v in g.neighbors(u):
                v = int(v)
                if parent[v] == -1:
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    return parent


def extract_path(parent: np.ndarray, source: int, dest: int) -> list[int]:
    """Recover the source->dest path from a BFS parent array."""
    if parent[dest] == -1:
        raise RoutingError(f"destination {dest} unreachable from {source}")
    path = [int(dest)]
    cur = int(dest)
    while cur != source:
        cur = int(parent[cur])
        path.append(cur)
        if len(path) > parent.shape[0]:
            raise RoutingError("parent array contains a cycle")
    path.reverse()
    return path


def shortest_path(g: StaticGraph, source: int, dest: int) -> list[int]:
    """Hop-optimal path between two nodes (raises when disconnected)."""
    if source == dest:
        return [int(source)]
    return extract_path(bfs_parents(g, source), source, dest)


def eccentricity(g: StaticGraph, source: int) -> int:
    """Maximum BFS distance from ``source`` (raises when disconnected)."""
    from repro.graphs.properties import bfs_distances

    d = bfs_distances(g, source)
    if (d < 0).any():
        raise RoutingError("graph is disconnected")
    return int(d.max())
