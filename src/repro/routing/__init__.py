"""Routing: shift-register de Bruijn routes, BFS paths, tables, fault routing."""

from repro.routing.shift_register import (
    overlap_length,
    overlap_length_batch,
    route_length,
    route_length_matrix,
    shift_route,
    shift_route_batch,
)
from repro.routing.shortest_path import (
    bfs_parents,
    eccentricity,
    extract_path,
    shortest_path,
)
from repro.routing.tables import (
    RouteTable,
    compile_routing_table,
    table_path,
    table_routes_batch,
    validate_routing_table,
)
from repro.routing.fault_routing import (
    ReconfiguredRouter,
    detour_route,
    lifted_routes_batch,
    survivor_graph,
)

__all__ = [
    "overlap_length",
    "overlap_length_batch",
    "shift_route",
    "shift_route_batch",
    "route_length",
    "route_length_matrix",
    "bfs_parents",
    "extract_path",
    "shortest_path",
    "eccentricity",
    "RouteTable",
    "compile_routing_table",
    "table_path",
    "table_routes_batch",
    "validate_routing_table",
    "ReconfiguredRouter",
    "detour_route",
    "lifted_routes_batch",
    "survivor_graph",
]
