"""Routing: how logical messages become physical node paths.

Four families, all emitting routes the simulation engines inject
directly (single paths as node lists, batches as flattened
``(flat, offsets)`` int64 arrays):

* **shift-register** (:mod:`~repro.routing.shift_register`) — the
  analytic de Bruijn route: shift in the destination's digits, at most
  ``h`` hops; scalar (:func:`shift_route`) and fully vectorized batch
  (:func:`shift_route_batch`) forms.
* **BFS shortest paths** (:mod:`~repro.routing.shortest_path`) — exact
  hop-optimal paths and the parent trees tables compile from.
* **compiled tables** (:mod:`~repro.routing.tables`) — dense pickle-safe
  next-hop arrays (:class:`RouteTable`): compile once per fault epoch,
  ship to shard workers, extract whole batches vectorized.
* **fault routing** (:mod:`~repro.routing.fault_routing`) — the paper's
  reconfigured lift (:class:`ReconfiguredRouter`,
  :func:`lifted_routes_batch`: route on the intact logical graph, lift
  through φ, zero dilation) vs the spare-less baseline
  (:func:`detour_route`: BFS around faults in the survivor graph).
"""

from repro.routing.shift_register import (
    overlap_length,
    overlap_length_batch,
    route_length,
    route_length_matrix,
    shift_route,
    shift_route_batch,
)
from repro.routing.shortest_path import (
    bfs_parents,
    eccentricity,
    extract_path,
    shortest_path,
)
from repro.routing.tables import (
    UNREACHABLE,
    RouteTable,
    compile_routing_table,
    table_path,
    table_reachable,
    table_routes_batch,
    table_routes_batch_masked,
    validate_routing_table,
)
from repro.routing.fault_routing import (
    ReconfiguredRouter,
    detour_route,
    lifted_routes_batch,
    survivor_graph,
    survivor_route_table,
)

__all__ = [
    "overlap_length",
    "overlap_length_batch",
    "shift_route",
    "shift_route_batch",
    "route_length",
    "route_length_matrix",
    "bfs_parents",
    "extract_path",
    "shortest_path",
    "eccentricity",
    "UNREACHABLE",
    "RouteTable",
    "compile_routing_table",
    "table_path",
    "table_reachable",
    "table_routes_batch",
    "table_routes_batch_masked",
    "validate_routing_table",
    "ReconfiguredRouter",
    "detour_route",
    "lifted_routes_batch",
    "survivor_graph",
    "survivor_route_table",
]
